"""Crash-safety tests: journal, snapshot/restore, faults, request lifecycle.

The core invariants, verified deterministically and under randomised fault
schedules (hypothesis):

* **exactness** — a restored session always reconciles *exactly*: the sum of
  its audit events' spend equals its kernel ledger, and every measurement
  record is claimed by exactly one event (orphans from the crash window are
  claimed by a synthesized errored event);
* **byte identity** — answers released before the crash replay after restore
  with bit-for-bit identical arrays, at zero additional ε;
* **charge-ahead** — no fault schedule can release an answer whose charges
  are not journaled; faults can only *waste* budget.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import Attribute, Relation, Schema
from repro.durability import (
    FaultInjector,
    InjectedFault,
    PrivacyJournal,
    RecoveryError,
    WorkerDeath,
    decode,
    encode,
    restore_session,
    snapshot_session,
)
from repro.durability.journal import _encode_line
from repro.private import DeadlineExceededError
from repro.service import (
    AdmissionController,
    AdmissionError,
    CircuitBreaker,
    MeasurementCache,
    PlanScheduler,
    QueryRequest,
    RequestFailure,
    RetryPolicy,
    SessionClosedError,
    SessionManager,
    reconcile,
)
from repro.telemetry.clock import ManualClock

N = 64


@pytest.fixture
def relation(small_vector):
    schema = Schema.build([Attribute("v", len(small_vector))])
    return Relation.from_histogram(schema, small_vector)


@pytest.fixture
def manager():
    return SessionManager()


def identity_request(session, epsilon=0.1, **overrides):
    request = QueryRequest(
        session.session_id,
        plan="Identity",
        epsilon=epsilon,
        workload="prefix",
        workload_params={"n": N},
    )
    return replace(request, **overrides) if overrides else request


def dawa_request(session, epsilon=0.4, **overrides):
    """DAWA spends its budget over two kernel charges — the partial-spend probe."""
    request = QueryRequest(
        session.session_id,
        plan="DAWA",
        epsilon=epsilon,
        workload="prefix",
        workload_params={"n": N},
    )
    return replace(request, **overrides) if overrides else request


# ======================================================================
# Serialisation.
# ======================================================================
class TestSerialize:
    def test_ndarray_roundtrip_is_byte_identical(self):
        rng = np.random.default_rng(0)
        for array in [
            rng.standard_normal(17),
            rng.standard_normal((3, 5)),
            np.arange(6, dtype=np.int32).reshape(2, 3),
            np.array([], dtype=np.float64),
        ]:
            back = decode(encode(array))
            assert back.dtype == array.dtype
            assert back.shape == array.shape
            assert back.tobytes() == array.tobytes()

    def test_nested_tuple_roundtrip_preserves_types(self):
        value = ("query", "Identity", (("n", 64), ("x", (1, 2.5))), None, 0.1)
        back = decode(encode(value))
        assert back == value
        assert isinstance(back, tuple)
        assert isinstance(back[2], tuple)
        assert isinstance(back[2][0], tuple)

    def test_scalars_bytes_and_dicts(self):
        value = {
            "i": np.int64(7),
            "f": np.float64(1.5),
            "b": np.bool_(True),
            "raw": b"\x00\xff",
            "nested": {"t": (1, 2)},
        }
        back = decode(encode(value))
        assert back["i"] == 7 and isinstance(back["i"], int)
        assert back["f"] == 1.5
        assert back["b"] is True
        assert back["raw"] == b"\x00\xff"
        assert back["nested"]["t"] == (1, 2)

    def test_dict_colliding_with_tag_keys_is_escaped(self):
        value = {"__tuple__": [1, 2], "other": 3}
        back = decode(encode(value))
        assert back == value and isinstance(back["__tuple__"], list)

    def test_unknown_objects_degrade_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert decode(encode(Opaque())) == "<opaque>"


# ======================================================================
# Journal.
# ======================================================================
class TestJournal:
    def test_append_commit_reopen(self, tmp_path):
        path = tmp_path / "j.wal"
        with PrivacyJournal(path) as journal:
            assert journal.append({"kind": "charge", "p": 0.1, "d": 0.0}) == 1
            assert journal.append({"kind": "charge", "p": 0.2, "d": 0.0}) == 2
            journal.commit()
        reopened = PrivacyJournal(path)
        assert reopened.seq == 2
        assert [r["p"] for r in reopened.records()] == [0.1, 0.2]
        assert reopened.records(after_seq=1)[0]["seq"] == 2
        # Appends continue the sequence.
        assert reopened.append({"kind": "charge", "p": 0.3, "d": 0.0}) == 3
        reopened.close()

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "j.wal"
        with PrivacyJournal(path) as journal:
            journal.append({"kind": "charge", "p": 0.1, "d": 0.0})
            journal.append({"kind": "charge", "p": 0.2, "d": 0.0})
        # Simulate a crash mid-append: half a line, no newline.
        with open(path, "ab") as f:
            f.write(b"deadbeef {\"seq\":3,\"kind\":\"char")
        recovered = PrivacyJournal(path)
        assert recovered.seq == 2
        assert recovered.truncated_bytes > 0
        assert recovered.truncated_records == 1
        # The file itself was repaired: a further reopen is clean.
        recovered.close()
        assert PrivacyJournal(path).truncated_bytes == 0

    def test_corrupt_record_truncates_rest(self, tmp_path):
        path = tmp_path / "j.wal"
        with PrivacyJournal(path) as journal:
            for i in range(4):
                journal.append({"kind": "charge", "p": float(i), "d": 0.0})
        raw = path.read_bytes()
        lines = raw.split(b"\n")
        # Flip a byte inside the third record's payload.
        lines[2] = lines[2][:-2] + b"X" + lines[2][-1:]
        path.write_bytes(b"\n".join(lines))
        recovered = PrivacyJournal(path)
        # Prefix durability: records after the corrupt one are gone too.
        assert recovered.seq == 2
        assert recovered.truncated_records == 2

    def test_sequence_gap_truncates(self, tmp_path):
        path = tmp_path / "j.wal"
        with open(path, "wb") as f:
            f.write(_encode_line({"seq": 1, "kind": "charge", "p": 0.1, "d": 0.0}))
            f.write(_encode_line({"seq": 3, "kind": "charge", "p": 0.3, "d": 0.0}))
        recovered = PrivacyJournal(path)
        assert recovered.seq == 1

    def test_in_memory_journal(self):
        journal = PrivacyJournal(None, fsync="never")
        journal.append({"kind": "charge", "p": 0.1, "d": 0.0})
        assert len(journal) == 1
        assert journal.stats["path"] is None

    def test_append_fault_raises_and_leaves_no_record(self):
        faults = FaultInjector()
        faults.arm("journal.append", after=1)
        journal = PrivacyJournal(None, fault_injector=faults)
        journal.append({"kind": "charge", "p": 0.1, "d": 0.0})
        with pytest.raises(InjectedFault):
            journal.append({"kind": "charge", "p": 0.2, "d": 0.0})
        assert journal.seq == 1


# ======================================================================
# Fault injector.
# ======================================================================
class TestFaultInjector:
    def test_schedule_fires_exact_hits(self):
        faults = FaultInjector()
        faults.arm("kernel.before_charge", after=2, times=1)
        for _ in range(2):
            faults.fire("kernel.before_charge")
        with pytest.raises(InjectedFault):
            faults.fire("kernel.before_charge")
        faults.fire("kernel.before_charge")  # spent
        assert [f.hit for f in faults.fired] == [3]

    def test_delay_only_spec_does_not_raise(self):
        faults = FaultInjector()
        faults.arm("journal.fsync", delay=0.001)
        started = time.perf_counter()
        faults.fire("journal.fsync")
        assert time.perf_counter() - started >= 0.001

    def test_custom_exception_and_reset(self):
        faults = FaultInjector()
        faults.arm("scheduler.worker", exception=WorkerDeath())
        with pytest.raises(WorkerDeath):
            faults.fire("scheduler.worker")
        faults.reset()
        faults.fire("scheduler.worker")
        assert faults.fired == []


# ======================================================================
# Journal wiring through the service.
# ======================================================================
class TestJournaledSession:
    def test_charges_are_journaled_before_release(self, manager, relation):
        journal = PrivacyJournal(None, fsync="never")
        scheduler = PlanScheduler(manager)
        session = manager.create_session(
            "acme", relation, 4.0, seed=0, journal=journal
        )
        scheduler.execute(identity_request(session))
        kinds = [record["kind"] for record in journal.records()]
        assert kinds == ["open", "charge", "measurement", "release", "event"]

    def test_journal_append_failure_aborts_charge_cleanly(self, manager, relation):
        faults = FaultInjector()
        journal = PrivacyJournal(None, fsync="never", fault_injector=faults)
        scheduler = PlanScheduler(manager)
        session = manager.create_session(
            "acme", relation, 4.0, seed=0, journal=journal
        )
        faults.arm("journal.append", after=0, times=1)  # first post-open append
        with pytest.raises(InjectedFault):
            scheduler.execute(identity_request(session))
        # WAL ordering: the failed append aborted the charge entirely.
        assert session.budget_consumed() == 0.0
        assert reconcile(session)["exact"]
        # The session keeps working afterwards.
        response = scheduler.execute(identity_request(session))
        assert response.epsilon_spent == pytest.approx(0.1)
        assert reconcile(session)["exact"]

    def test_cached_replay_appends_event_only(self, manager, relation):
        journal = PrivacyJournal(None, fsync="never")
        scheduler = PlanScheduler(manager)
        session = manager.create_session(
            "acme", relation, 4.0, seed=0, journal=journal
        )
        scheduler.execute(identity_request(session))
        before = len(journal)
        scheduler.execute(identity_request(session))
        new = journal.records(after_seq=before)
        assert [record["kind"] for record in new] == ["event"]
        assert new[0]["cached"] is True


# ======================================================================
# Snapshot / restore.
# ======================================================================
class TestSnapshotRestore:
    def _run_session(self, manager, relation, journal, requests=3):
        scheduler = PlanScheduler(manager)
        session = manager.create_session(
            "acme", relation, 4.0, seed=7, journal=journal
        )
        responses = [
            scheduler.execute(identity_request(session, epsilon=0.1 * (i + 1)))
            for i in range(requests)
        ]
        return scheduler, session, responses

    def test_snapshot_plus_journal_suffix_restores_exactly(self, manager, relation, tmp_path):
        path = tmp_path / "j.wal"
        journal = PrivacyJournal(path)
        scheduler, session, responses = self._run_session(manager, relation, journal, 2)
        snap = scheduler.snapshot_session(session.session_id)
        third = scheduler.execute(identity_request(session, epsilon=0.3))
        journal.close()

        fresh = PlanScheduler(SessionManager())
        restored = fresh.restore_session(
            relation, snapshot=snap, journal=PrivacyJournal(path)
        )
        assert restored.budget_consumed() == pytest.approx(session.budget_consumed())
        assert len(restored.events) == len(session.events)
        assert reconcile(restored)["exact"]
        assert restored.recovery_info["orphaned_event"] is None
        # The post-snapshot answer replays from cache, byte-identical, free.
        replay = fresh.execute(identity_request(restored, epsilon=0.3))
        assert replay.cached
        assert replay.x_hat.tobytes() == third.x_hat.tobytes()
        assert restored.budget_consumed() == pytest.approx(session.budget_consumed())

    def test_journal_only_restore(self, manager, relation, tmp_path):
        path = tmp_path / "j.wal"
        journal = PrivacyJournal(path)
        scheduler, session, responses = self._run_session(manager, relation, journal)
        journal.close()

        fresh = PlanScheduler(SessionManager())
        restored = fresh.restore_session(relation, journal=PrivacyJournal(path))
        assert restored.budget_consumed() == pytest.approx(session.budget_consumed())
        assert reconcile(restored)["exact"]
        for i, original in enumerate(responses):
            replay = fresh.execute(identity_request(restored, epsilon=0.1 * (i + 1)))
            assert replay.cached
            assert replay.x_hat.tobytes() == original.x_hat.tobytes()
            assert replay.answers.tobytes() == original.answers.tobytes()

    def test_snapshot_only_restore(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=7)
        response = scheduler.execute(identity_request(session))
        snap = scheduler.snapshot_session(session.session_id)
        fresh = PlanScheduler(SessionManager())
        restored = fresh.restore_session(relation, snapshot=snap)
        assert reconcile(restored)["exact"]
        replay = fresh.execute(identity_request(restored))
        assert replay.cached
        assert replay.x_hat.tobytes() == response.x_hat.tobytes()

    def test_snapshot_is_json_serialisable(self, manager, relation):
        import json

        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=7)
        scheduler.execute(identity_request(session))
        snap = scheduler.snapshot_session(session.session_id)
        roundtrip = json.loads(json.dumps(snap))
        restored = PlanScheduler(SessionManager()).restore_session(
            relation, snapshot=roundtrip
        )
        assert reconcile(restored)["exact"]

    def test_restored_charges_keep_spending_from_true_remainder(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 1.0, seed=7)
        scheduler.execute(identity_request(session, epsilon=0.7))
        snap = scheduler.snapshot_session(session.session_id)
        fresh = PlanScheduler(SessionManager())
        restored = fresh.restore_session(relation, snapshot=snap)
        # 0.3 remains: a 0.4 request must be rejected post-restore.
        from repro.private import BudgetExceededError

        with pytest.raises(BudgetExceededError):
            fresh.execute(identity_request(restored, epsilon=0.4))
        fresh.execute(identity_request(restored, epsilon=0.3))
        assert reconcile(restored)["exact"]

    def test_zcdp_session_restores(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session(
            "acme", relation, 2.0, seed=3, accountant="zcdp", delta=1e-6
        )
        scheduler.execute(identity_request(session))
        snap = scheduler.snapshot_session(session.session_id)
        restored = PlanScheduler(SessionManager()).restore_session(relation, snapshot=snap)
        assert restored.accountant.name == "zcdp"
        assert restored.budget_consumed() == pytest.approx(session.budget_consumed())
        assert reconcile(restored)["exact"]

    def test_accountant_mismatch_raises_in_strict_mode(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=7)
        scheduler.execute(identity_request(session))
        snap = scheduler.snapshot_session(session.session_id)
        snap["accountant"]["describe"]["epsilon_budget"] = 99.0
        with pytest.raises(RecoveryError):
            restore_session(relation, snapshot=snap)
        restored = restore_session(relation, snapshot=snap, strict=False)
        assert reconcile(restored)["exact"]

    def test_manager_refuses_duplicate_adoption(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=7)
        scheduler.execute(identity_request(session))
        snap = scheduler.snapshot_session(session.session_id)
        with pytest.raises(ValueError, match="already exists"):
            scheduler.restore_session(relation, snapshot=snap)

    def test_restored_request_ids_do_not_collide(self, manager, relation, tmp_path):
        journal = PrivacyJournal(tmp_path / "j.wal")
        scheduler, session, _ = self._run_session(manager, relation, journal)
        journal.close()
        fresh = PlanScheduler(SessionManager())
        restored = fresh.restore_session(
            relation, journal=PrivacyJournal(tmp_path / "j.wal")
        )
        seen = {event.request_id for event in restored.events}
        fresh_response = fresh.execute(
            identity_request(restored, epsilon=0.05, reuse=False)
        )
        assert fresh_response.request_id not in seen

    def test_restored_stub_sources_reject_measurement(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=7)
        scheduler.execute(identity_request(session))
        snap = scheduler.snapshot_session(session.session_id)
        restored = restore_session(relation, snapshot=snap)
        from repro.private import InvalidTransformationError
        from repro.workload.builders import identity_workload

        stub_names = [
            name
            for name, kind in snap["kernel"]["source_kinds"].items()
            if name != "root" and kind == "vector"
        ]
        assert stub_names
        with pytest.raises(InvalidTransformationError, match="restored without data"):
            restored.kernel.measure_vector_laplace(
                stub_names[0], identity_workload(N), 0.1
            )


# ======================================================================
# Crash window: orphaned spend.
# ======================================================================
class TestOrphanClaiming:
    def test_worker_death_after_charge_is_claimed_in_batch(self, manager, relation):
        faults = FaultInjector()
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        session.kernel.fault_injector = faults
        # Die inside the charge-ahead window of the second DAWA charge.
        faults.arm("kernel.after_charge", after=1, exception=WorkerDeath())
        results = scheduler.execute_batch(
            [dawa_request(session, epsilon=0.4)], return_exceptions=True
        )
        assert isinstance(results[0], WorkerDeath)
        failure = RequestFailure.of(results[0])
        assert failure is not None and not failure.ledgered
        assert failure.epsilon_spent > 0.0
        # The dead request's spend was claimed: the ledger balances exactly.
        assert session.budget_consumed() > 0.0
        assert reconcile(session)["exact"]
        orphan = session.events[-1]
        assert orphan.error == "WorkerDeath"
        assert orphan.epsilon_spent == pytest.approx(failure.epsilon_spent)

    def test_worker_death_at_entry_spends_nothing(self, manager, relation):
        faults = FaultInjector()
        scheduler = PlanScheduler(manager, fault_injector=faults)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        faults.arm("scheduler.worker", exception=WorkerDeath())
        results = scheduler.execute_batch(
            [identity_request(session)], return_exceptions=True
        )
        assert isinstance(results[0], WorkerDeath)
        assert session.budget_consumed() == 0.0
        assert session.events == []
        assert reconcile(session)["exact"]

    def test_batch_with_dead_worker_keeps_other_requests(self, manager, relation):
        faults = FaultInjector()
        scheduler = PlanScheduler(manager)
        session_a = manager.create_session("acme", relation, 4.0, seed=0)
        session_b = manager.create_session("beta", relation, 4.0, seed=1)
        session_a.kernel.fault_injector = faults
        faults.arm("kernel.after_charge", exception=WorkerDeath())
        results = scheduler.execute_batch(
            [identity_request(session_a), identity_request(session_b)],
            return_exceptions=True,
        )
        assert isinstance(results[0], WorkerDeath)
        assert results[1].epsilon_spent == pytest.approx(0.1)
        assert reconcile(session_a)["exact"]
        assert reconcile(session_b)["exact"]

    def test_without_exceptions_flag_worker_death_reraises(self, manager, relation):
        faults = FaultInjector()
        scheduler = PlanScheduler(manager, fault_injector=faults)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        faults.arm("scheduler.worker", exception=WorkerDeath())
        with pytest.raises(WorkerDeath):
            scheduler.execute_batch([identity_request(session)])
        assert reconcile(session)["exact"]

    def test_orphans_survive_crash_and_restore(self, manager, relation, tmp_path):
        path = tmp_path / "j.wal"
        faults = FaultInjector()
        journal = PrivacyJournal(path)
        scheduler = PlanScheduler(manager)
        session = manager.create_session(
            "acme", relation, 4.0, seed=0, journal=journal
        )
        session.kernel.fault_injector = faults
        scheduler.execute(identity_request(session))
        # The crash: a request dies inside the charge-ahead window and the
        # process never gets to ledger anything about it.
        faults.arm("kernel.after_charge", exception=WorkerDeath("crash"))
        with pytest.raises(WorkerDeath):
            scheduler.execute(identity_request(session, epsilon=0.2, reuse=False))
        journal.close()

        fresh = PlanScheduler(SessionManager())
        restored = fresh.restore_session(relation, journal=PrivacyJournal(path))
        # The journaled-but-unclaimed charge was claimed by a synthesized
        # errored event: budget is wasted, never leaked, and the ledger is
        # exact.
        assert restored.budget_consumed() == pytest.approx(0.1 + 0.2)
        assert reconcile(restored)["exact"]
        orphan = restored.recovery_info["orphaned_event"]
        assert orphan is not None
        assert orphan["epsilon_spent"] == pytest.approx(0.2)
        assert orphan["error"] == "CrashRecovery"


# ======================================================================
# Session close semantics.
# ======================================================================
class TestCloseSemantics:
    def test_new_requests_rejected_after_close_begins(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        session.begin_close()
        with pytest.raises(SessionClosedError):
            scheduler.execute(identity_request(session))
        # The rejection is not ledgered: the request never touched the session.
        assert session.events == []

    def test_drain_close_waits_for_inflight_request(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        release = threading.Event()
        entered = threading.Event()
        original_run = scheduler._run_locked

        def slow_run(session_, request, queued_at, root):
            entered.set()
            release.wait(timeout=5)
            return original_run(session_, request, queued_at, root)

        scheduler._run_locked = slow_run
        worker = threading.Thread(
            target=lambda: scheduler.execute(identity_request(session))
        )
        worker.start()
        assert entered.wait(timeout=5)
        closer_done = threading.Event()
        closed_session = []

        def close():
            closed_session.append(scheduler.close_session(session.session_id))
            closer_done.set()

        closer = threading.Thread(target=close)
        closer.start()
        # The close is draining: it must not finish while the request runs.
        assert not closer_done.wait(timeout=0.2)
        release.set()
        worker.join(timeout=5)
        assert closer_done.wait(timeout=5)
        closer.join(timeout=5)
        closed = closed_session[0]
        # The in-flight request was ledgered before the close completed.
        assert len(closed.events) == 1
        assert closed.events[0].error == ""
        assert reconcile(closed)["exact"]

    def test_requests_queued_behind_close_are_rejected(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        with session.lock:
            session.begin_close()
        with pytest.raises(SessionClosedError):
            scheduler.execute(identity_request(session))

    def test_non_drain_close_returns_immediately(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        scheduler.execute(identity_request(session))
        closed = scheduler.close_session(session.session_id, drain=False)
        assert closed.closed
        assert session.session_id not in manager


# ======================================================================
# Deadlines.
# ======================================================================
class TestDeadlines:
    def test_expired_while_queued_is_ledgered_zero_spend(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        with pytest.raises(DeadlineExceededError):
            scheduler.execute(identity_request(session, deadline_seconds=0.0))
        assert session.budget_consumed() == 0.0
        event = session.events[-1]
        assert event.error == "DeadlineExceededError"
        assert event.epsilon_spent == 0.0
        assert reconcile(session)["exact"]
        timeouts = scheduler.metrics.counter(
            "service_deadline_timeouts", tenant="acme", plan="Identity"
        )
        assert timeouts.value == 1

    def test_mid_plan_timeout_ledgers_true_partial_spend(self, manager, relation):
        faults = FaultInjector()
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        session.kernel.fault_injector = faults
        # Slow both DAWA charges; the deadline passes during the first one,
        # so the kernel refuses the second charge before it spends.
        faults.arm("kernel.before_charge", times=2, delay=0.05)
        with pytest.raises(DeadlineExceededError):
            scheduler.execute(dawa_request(session, epsilon=0.4, deadline_seconds=0.03))
        event = session.events[-1]
        assert event.error == "DeadlineExceededError"
        assert 0.0 < event.epsilon_spent < 0.4
        assert session.budget_consumed() == pytest.approx(event.epsilon_spent)
        assert reconcile(session)["exact"]

    def test_deadline_cleared_after_request(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        scheduler.execute(identity_request(session, deadline_seconds=30.0))
        assert session.kernel.deadline is None
        # A deadline-free request after a timed one is unaffected.
        response = scheduler.execute(
            identity_request(session, epsilon=0.2, reuse=False)
        )
        assert response.epsilon_spent == pytest.approx(0.2)

    def test_deadline_does_not_change_cache_identity(self, manager, relation):
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        first = scheduler.execute(identity_request(session))
        second = scheduler.execute(identity_request(session, deadline_seconds=30.0))
        assert second.cached
        assert second.x_hat.tobytes() == first.x_hat.tobytes()


# ======================================================================
# Retries.
# ======================================================================
class TestRetries:
    def test_transient_fault_before_charge_retries_to_success(self, manager, relation):
        faults = FaultInjector()
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        session.kernel.fault_injector = faults
        faults.arm("kernel.before_charge", times=1)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        response = scheduler.execute_with_retry(identity_request(session), policy)
        assert not response.cached
        # One errored zero-spend event, one success; total spend charged once.
        assert session.budget_consumed() == pytest.approx(0.1)
        assert [event.error for event in session.events] == ["InjectedFault", ""]
        assert reconcile(session)["exact"]

    def test_fault_after_release_replays_from_cache_at_zero_epsilon(
        self, manager, relation, tmp_path
    ):
        faults = FaultInjector()
        journal = PrivacyJournal(tmp_path / "j.wal", fsync="always", fault_injector=faults)
        scheduler = PlanScheduler(manager)
        session = manager.create_session(
            "acme", relation, 4.0, seed=0, journal=journal
        )
        # The commit *after* the answer was stored fails (fsync hiccup).
        # Hits count from arm time, so the attach-time commit is excluded:
        # the very next fsync is the one closing out this request.
        faults.arm("journal.fsync", after=0, times=1, exception=OSError("fsync"))
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        response = scheduler.execute_with_retry(identity_request(session), policy)
        # Budget-safe: the retry found the stored answer and replayed it.
        assert response.cached
        assert session.budget_consumed() == pytest.approx(0.1)
        assert reconcile(session)["exact"]
        retries = scheduler.metrics.counter(
            "service_retries", tenant="acme", plan="Identity"
        )
        assert retries.value == 1

    def test_non_transient_fault_is_not_retried(self, manager, relation):
        faults = FaultInjector()
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        session.kernel.fault_injector = faults
        faults.arm("kernel.before_charge", times=3, transient=False)
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)
        with pytest.raises(InjectedFault):
            scheduler.execute_with_retry(identity_request(session), policy)
        # Only one attempt was made.
        assert len(session.events) == 1

    def test_attempts_are_bounded(self, manager, relation):
        faults = FaultInjector()
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        session.kernel.fault_injector = faults
        faults.arm("kernel.before_charge", times=100)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(InjectedFault):
            scheduler.execute_with_retry(identity_request(session), policy)
        assert len(session.events) == 3
        assert session.budget_consumed() == 0.0
        assert reconcile(session)["exact"]

    def test_backoff_delays_grow_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=0.5, jitter=0.0)
        rng = policy.rng()
        delays = [policy.delay(k, rng) for k in range(1, 6)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])
        jittered = RetryPolicy(base_delay=0.1, jitter=0.5, seed=1)
        rng = jittered.rng()
        assert all(0.05 <= jittered.delay(1, rng) <= 0.15 for _ in range(20))


# ======================================================================
# Admission control.
# ======================================================================
class TestAdmission:
    def test_queue_depth_cap_rejects_unledgered(self, manager, relation):
        admission = AdmissionController(max_queue_depth=1)
        scheduler = PlanScheduler(manager, admission=admission)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        admission.acquire("other")  # saturate the global queue
        with pytest.raises(AdmissionError, match="queue"):
            scheduler.execute(identity_request(session))
        assert session.events == []
        assert session.budget_consumed() == 0.0
        admission.release("other")
        assert scheduler.execute(identity_request(session)).epsilon_spent > 0
        assert admission.stats["rejections"] == 1

    def test_per_tenant_cap(self, manager, relation):
        admission = AdmissionController(max_inflight_per_tenant=1)
        scheduler = PlanScheduler(manager, admission=admission)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        admission.acquire("acme")
        with pytest.raises(AdmissionError, match="tenant"):
            scheduler.execute(identity_request(session))
        # Another tenant is unaffected by acme's cap.
        other = manager.create_session("beta", relation, 4.0, seed=1)
        assert scheduler.execute(identity_request(other)).epsilon_spent > 0
        admission.release("acme")

    def test_inflight_counters_return_to_zero(self, manager, relation):
        admission = AdmissionController(max_queue_depth=4)
        scheduler = PlanScheduler(manager, admission=admission)
        session = manager.create_session("acme", relation, 4.0, seed=0)
        scheduler.execute_batch(
            [identity_request(session, epsilon=0.1 * (i + 1)) for i in range(3)]
        )
        stats = admission.stats
        assert stats["in_flight"] == 0
        assert stats["per_tenant"] == {}


# ======================================================================
# Circuit breaker.
# ======================================================================
class TestCircuitBreaker:
    def _failing_setup(self, manager, relation, clock, threshold=2):
        faults = FaultInjector()
        breaker = CircuitBreaker(
            failure_threshold=threshold, cooldown_seconds=10.0, clock=clock
        )
        scheduler = PlanScheduler(manager, breaker=breaker)
        session = manager.create_session("acme", relation, 8.0, seed=0)
        session.kernel.fault_injector = faults
        return faults, breaker, scheduler, session

    def test_opens_after_threshold_and_sheds_to_fallback(self, manager, relation):
        clock = ManualClock()
        faults, breaker, scheduler, session = self._failing_setup(
            manager, relation, clock
        )
        faults.arm("kernel.before_charge", times=2)
        request = dawa_request(session, epsilon=0.4)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                scheduler.execute(replace(request, reuse=False))
        assert breaker.is_open("DAWA")
        # Shed: the fallback Identity plan answers, marked degraded.
        response = scheduler.execute(replace(request, reuse=False))
        assert response.plan == "Identity"
        assert response.info["degraded_from"] == "DAWA"
        shed = scheduler.metrics.counter(
            "service_shed_requests", tenant="acme", plan="DAWA"
        )
        assert shed.value == 1
        assert reconcile(session)["exact"]

    def test_probe_after_cooldown_closes_circuit(self, manager, relation):
        clock = ManualClock()
        faults, breaker, scheduler, session = self._failing_setup(
            manager, relation, clock
        )
        faults.arm("kernel.before_charge", times=2)
        request = dawa_request(session, epsilon=0.4)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                scheduler.execute(replace(request, reuse=False))
        clock.advance(11.0)
        # The probe runs the real plan (faults exhausted) and closes.
        response = scheduler.execute(replace(request, reuse=False))
        assert response.plan == "DAWA"
        assert not breaker.is_open("DAWA")

    def test_failed_probe_reopens(self, manager, relation):
        clock = ManualClock()
        faults, breaker, scheduler, session = self._failing_setup(
            manager, relation, clock
        )
        faults.arm("kernel.before_charge", times=3)
        request = dawa_request(session, epsilon=0.4)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                scheduler.execute(replace(request, reuse=False))
        clock.advance(11.0)
        with pytest.raises(InjectedFault):
            scheduler.execute(replace(request, reuse=False))
        assert breaker.is_open("DAWA")
        # Still shedding inside the new cooldown window.
        response = scheduler.execute(replace(request, reuse=False))
        assert response.info["degraded_from"] == "DAWA"

    def test_breaker_isolated_per_plan(self, manager, relation):
        clock = ManualClock()
        faults, breaker, scheduler, session = self._failing_setup(
            manager, relation, clock
        )
        faults.arm("kernel.before_charge", times=2)
        request = dawa_request(session, epsilon=0.4)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                scheduler.execute(replace(request, reuse=False))
        assert breaker.is_open("DAWA")
        response = scheduler.execute(identity_request(session))
        assert not response.cached and "degraded_from" not in response.info


# ======================================================================
# Property suite: random fault schedules.
# ======================================================================
_FAULT_CHOICES = st.sampled_from(
    [
        ("kernel.before_charge", "fault"),
        ("kernel.after_charge", "fault"),
        ("kernel.after_charge", "death"),
        ("journal.fsync", "oserror"),
        ("scheduler.worker", "death"),
    ]
)


@st.composite
def fault_schedules(draw):
    """A handful of independent fault arms with random skip counts."""
    arms = draw(st.lists(_FAULT_CHOICES, min_size=0, max_size=3))
    return [(point, mode, draw(st.integers(0, 4))) for point, mode in arms]


def _property_relation():
    """Fixture-free relation for hypothesis tests (function-scoped fixtures
    are not reset between generated inputs)."""
    histogram = np.random.default_rng(7).integers(0, 40, N).astype(float)
    return Relation.from_histogram(Schema.build([Attribute("v", N)]), histogram)


class TestCrashRecoveryProperties:
    @settings(max_examples=20, deadline=None)
    @given(schedule=fault_schedules(), num_requests=st.integers(1, 4))
    def test_restore_reconciles_exactly_under_any_fault_schedule(
        self, tmp_path_factory, schedule, num_requests
    ):
        relation = _property_relation()
        path = tmp_path_factory.mktemp("wal") / "j.wal"
        faults = FaultInjector()
        journal = PrivacyJournal(path, fsync="always", fault_injector=faults)
        manager = SessionManager()
        scheduler = PlanScheduler(manager, fault_injector=faults)
        session = manager.create_session(
            "acme", relation, 8.0, seed=11, journal=journal
        )
        session.kernel.fault_injector = faults
        # Arm only after the session is open so every fault lands inside a
        # request (hit counts start at arm time).
        for point, mode, after in schedule:
            exception = None
            if mode == "death":
                exception = WorkerDeath(point)
            elif mode == "oserror":
                exception = OSError(f"injected at {point}")
            faults.arm(point, after=after, exception=exception)

        requests = [
            dawa_request(session, epsilon=0.2)
            if i % 2
            else identity_request(session, epsilon=0.1 * (i + 1))
            for i in range(num_requests)
        ]
        results = scheduler.execute_batch(
            requests, max_workers=1, return_exceptions=True
        )
        # Whatever the schedule did, the *live* session must reconcile (the
        # batch collector claims worker-death orphans).
        assert reconcile(session)["exact"]
        live_consumed = session.budget_consumed()
        journal.close()

        # The crash: a brand-new process restores from the journal alone.
        fresh = PlanScheduler(SessionManager())
        restored = fresh.restore_session(relation, journal=PrivacyJournal(path))
        assert reconcile(restored)["exact"]
        assert restored.budget_consumed() == pytest.approx(live_consumed, abs=1e-9)

        # Every answer released pre-crash replays byte-identical at zero ε.
        spent_before = restored.budget_consumed()
        for request, result in zip(requests, results):
            if isinstance(result, BaseException) or result.cached:
                continue
            replay = fresh.execute(
                replace(request, session_id=restored.session_id, request_id=None)
            )
            assert replay.cached
            assert replay.x_hat.tobytes() == result.x_hat.tobytes()
        assert restored.budget_consumed() == spent_before
        assert reconcile(restored)["exact"]

    @settings(max_examples=10, deadline=None)
    @given(cut=st.integers(1, 200))
    def test_truncated_journal_tail_still_restores_consistently(
        self, tmp_path_factory, cut
    ):
        """Losing an arbitrary tail of the journal never breaks exactness."""
        relation = _property_relation()
        path = tmp_path_factory.mktemp("wal") / "j.wal"
        journal = PrivacyJournal(path)
        manager = SessionManager()
        scheduler = PlanScheduler(manager)
        session = manager.create_session(
            "acme", relation, 8.0, seed=5, journal=journal
        )
        for i in range(3):
            scheduler.execute(identity_request(session, epsilon=0.1 * (i + 1)))
        journal.close()

        raw = path.read_bytes()
        # Keep at least the open record (its line ends at the first newline).
        head = raw.find(b"\n") + 1
        truncated = raw[: max(head, len(raw) - cut)]
        path.write_bytes(truncated)

        restored = PlanScheduler(SessionManager()).restore_session(
            relation, journal=PrivacyJournal(path)
        )
        # Prefix durability: whatever survived reconciles exactly, and spend
        # never exceeds what was actually charged pre-crash.
        assert reconcile(restored)["exact"]
        assert restored.budget_consumed() <= session.budget_consumed() + 1e-9
