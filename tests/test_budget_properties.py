"""Property-based tests for the privacy accounting (Algorithm 2 invariants)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.private.budget import BudgetTracker


@st.composite
def request_sequences(draw):
    """A random tree of sources plus a random sequence of budget requests."""
    epsilon_total = draw(st.floats(min_value=0.1, max_value=5.0))
    num_derived = draw(st.integers(min_value=0, max_value=4))
    num_partition_children = draw(st.integers(min_value=0, max_value=4))
    stabilities = [
        draw(st.sampled_from([1.0, 1.0, 2.0])) for _ in range(num_derived)
    ]
    requests = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.floats(min_value=0.0, max_value=2.0),
            ),
            max_size=12,
        )
    )
    return epsilon_total, stabilities, num_partition_children, requests


def _build(epsilon_total, stabilities, num_partition_children):
    tracker = BudgetTracker(epsilon_total)
    names = ["root"]
    parent = "root"
    for i, s in enumerate(stabilities):
        name = f"derived{i}"
        tracker.add_derived(name, parent, stability=s)
        names.append(name)
        parent = name
    if num_partition_children:
        tracker.add_partition("part", parent)
        for i in range(num_partition_children):
            name = f"child{i}"
            tracker.add_derived(name, "part", stability=1.0)
            names.append(name)
    return tracker, names


@given(request_sequences())
@settings(max_examples=200, deadline=None)
def test_root_consumption_never_exceeds_total(params):
    epsilon_total, stabilities, num_children, requests = params
    tracker, names = _build(epsilon_total, stabilities, num_children)
    for target_index, sigma in requests:
        target = names[target_index % len(names)]
        tracker.request(target, sigma)
    assert tracker.consumed("root") <= epsilon_total + 1e-9
    assert tracker.remaining() >= -1e-9


@given(request_sequences())
@settings(max_examples=200, deadline=None)
def test_denied_requests_change_nothing(params):
    epsilon_total, stabilities, num_children, requests = params
    tracker, names = _build(epsilon_total, stabilities, num_children)
    for target_index, sigma in requests:
        target = names[target_index % len(names)]
        before = {name: tracker.consumed(name) for name in names}
        granted = tracker.request(target, sigma)
        if not granted:
            after = {name: tracker.consumed(name) for name in names}
            assert before == after


@given(
    st.floats(min_value=0.2, max_value=5.0),
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=8),
)
@settings(max_examples=200, deadline=None)
def test_sequential_composition_adds(epsilon_total, sigmas):
    tracker = BudgetTracker(epsilon_total)
    granted_total = 0.0
    for sigma in sigmas:
        if tracker.request("root", sigma):
            granted_total += sigma
    assert tracker.consumed("root") == np.float64(granted_total) or np.isclose(
        tracker.consumed("root"), granted_total
    )


@given(
    st.floats(min_value=0.5, max_value=5.0),
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=0.01, max_value=0.4),
)
@settings(max_examples=200, deadline=None)
def test_parallel_composition_charges_max_once(epsilon_total, num_children, sigma):
    tracker = BudgetTracker(epsilon_total)
    tracker.add_partition("part", "root")
    for i in range(num_children):
        tracker.add_derived(f"c{i}", "part", stability=1.0)
    for i in range(num_children):
        assert tracker.request(f"c{i}", sigma)
    assert np.isclose(tracker.consumed("root"), sigma)


@given(
    st.floats(min_value=1.0, max_value=10.0),
    st.sampled_from([1.0, 2.0, 3.0]),
    st.floats(min_value=0.05, max_value=0.5),
)
@settings(max_examples=100, deadline=None)
def test_stability_scales_root_cost(epsilon_total, stability, sigma):
    tracker = BudgetTracker(epsilon_total)
    tracker.add_derived("d", "root", stability=stability)
    granted = tracker.request("d", sigma)
    if stability * sigma <= epsilon_total:
        assert granted
        assert np.isclose(tracker.consumed("root"), stability * sigma)
    else:
        assert not granted
        assert tracker.consumed("root") == 0.0
