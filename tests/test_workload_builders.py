"""Unit tests for the workload builders."""

import numpy as np
import pytest

from repro.matrix import Prefix
from repro.workload import (
    all_range_workload,
    census_prefix_income_workload,
    identity_workload,
    marginals_workload,
    naive_bayes_workload,
    prefix_workload,
    random_range_workload,
    two_way_marginals_workload,
)


class TestBasicWorkloads:
    def test_prefix_workload(self):
        w = prefix_workload(8)
        assert isinstance(w, Prefix)
        assert w.shape == (8, 8)

    def test_identity_workload_from_domain(self):
        assert identity_workload(12).shape == (12, 12)
        assert identity_workload((3, 4)).shape == (12, 12)

    def test_random_range_workload_is_seeded(self):
        a = random_range_workload(64, 20, seed=1)
        b = random_range_workload(64, 20, seed=1)
        c = random_range_workload(64, 20, seed=2)
        assert a.intervals == b.intervals
        assert a.intervals != c.intervals

    def test_random_range_respects_max_length(self):
        w = random_range_workload(128, 50, seed=0, max_length=5)
        assert all(hi - lo + 1 <= 5 for lo, hi in w.intervals)

    def test_all_range_workload_count(self):
        n = 6
        w = all_range_workload(n)
        assert w.shape == (n * (n + 1) // 2, n)


class TestCensusWorkloads:
    def test_two_way_marginals_shape(self):
        domain = (3, 4, 2)
        w = two_way_marginals_workload(domain)
        expected_rows = 3 * 4 + 3 * 2 + 4 * 2
        assert w.shape == (expected_rows, 24)

    def test_two_way_marginal_answers(self):
        domain = (2, 2, 2)
        rng = np.random.default_rng(0)
        x = rng.integers(0, 5, 8).astype(float)
        w = two_way_marginals_workload(domain)
        answers = w.matvec(x)
        tensor = x.reshape(domain)
        expected_01 = tensor.sum(axis=2).ravel()
        assert np.allclose(answers[:4], expected_01)

    def test_census_prefix_income_workload(self):
        domain = (6, 3, 2)  # income, age, gender
        w = census_prefix_income_workload(domain, income_axis=0)
        # Income factor has 6 prefix rows; other factors contribute (1+3) and (1+2).
        assert w.shape == (6 * 4 * 3, 36)
        x = np.ones(36)
        answers = w.matvec(x)
        # First query: income <= bin0, any age, any gender -> 6 cells.
        assert answers[0] == 6.0

    def test_marginals_workload_groups(self):
        domain = (3, 2, 2)
        w = marginals_workload(domain, [[0], [1, 2]])
        assert w.shape == (3 + 4, 12)


class TestNaiveBayesWorkload:
    def test_shape_is_2k_plus_1_histograms(self):
        domain = (2, 5, 3)  # label + two predictors
        w = naive_bayes_workload(domain, label_axis=0, predictor_axes=[1, 2])
        expected_rows = 2 + 2 * 5 + 2 * 3
        assert w.shape == (expected_rows, 30)

    def test_answers_are_histogram_counts(self):
        domain = (2, 3)
        rng = np.random.default_rng(1)
        x = rng.integers(0, 10, 6).astype(float)
        w = naive_bayes_workload(domain, label_axis=0, predictor_axes=[1])
        answers = w.matvec(x)
        tensor = x.reshape(domain)
        assert np.allclose(answers[:2], tensor.sum(axis=1))
        assert np.allclose(answers[2:], tensor.ravel())
