"""Tests for the 1-D and 2-D plans of Fig. 2 (data-independent and data-dependent)."""

import numpy as np
import pytest

from repro.analysis import per_query_l2_error
from repro.dataset import load_1d, load_2d
from repro.plans import (
    AdaptiveGridPlan,
    AhpPlan,
    DawaPlan,
    GreedyHPlan,
    H2Plan,
    HbPlan,
    HdmmPlan,
    IdentityPlan,
    MwemPlan,
    PriveletPlan,
    QuadtreePlan,
    UniformGridPlan,
    UniformPlan,
)
from repro.workload import identity_workload, random_range_workload
from tests.conftest import make_vector_relation

from repro.private import protect


def _source(x, epsilon=1.0, seed=0):
    return protect(make_vector_relation(x), epsilon, seed=seed).vectorize()


@pytest.fixture(scope="module")
def data_1d():
    return load_1d("PIECEWISE", n=128, scale=50_000)


@pytest.fixture(scope="module")
def workload_1d():
    return random_range_workload(128, 30, seed=5)


ONE_D_PLANS = [
    ("Identity", lambda w: IdentityPlan()),
    ("Uniform", lambda w: UniformPlan()),
    ("Privelet", lambda w: PriveletPlan()),
    ("H2", lambda w: H2Plan()),
    ("HB", lambda w: HbPlan()),
    ("Greedy-H", lambda w: GreedyHPlan(workload_intervals=w.intervals)),
    ("HDMM", lambda w: HdmmPlan(w)),
    ("AHP", lambda w: AhpPlan()),
    ("DAWA", lambda w: DawaPlan(workload_intervals=w.intervals)),
    ("MWEM", lambda w: MwemPlan(w, rounds=3)),
]


class TestOneDimensionalPlans:
    @pytest.mark.parametrize("name,factory", ONE_D_PLANS)
    def test_runs_and_spends_exact_budget(self, name, factory, data_1d, workload_1d):
        plan = factory(workload_1d)
        source = _source(data_1d, epsilon=1.0, seed=3)
        result = plan.run(source, 1.0)
        assert result.x_hat.shape == (128,)
        assert np.all(np.isfinite(result.x_hat))
        assert result.budget_spent == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("name,factory", ONE_D_PLANS)
    def test_high_epsilon_gives_low_error(self, name, factory, data_1d, workload_1d):
        # With a huge budget every plan except Uniform should track the data closely.
        plan = factory(workload_1d)
        source = _source(data_1d, epsilon=1000.0, seed=4)
        result = plan.run(source, 1000.0)
        error = per_query_l2_error(workload_1d, data_1d, result.x_hat)
        if name in ("Uniform", "MWEM"):
            # Uniform cannot adapt; MWEM with 3 rounds only answers a few queries.
            assert error < 0.5
        else:
            assert error < 0.01

    def test_identity_answers_are_unbiased(self, data_1d):
        errors = []
        for seed in range(5):
            source = _source(data_1d, epsilon=1.0, seed=seed)
            result = IdentityPlan().run(source, 1.0)
            errors.append((result.x_hat - data_1d).mean())
        assert abs(np.mean(errors)) < 2.0

    def test_dawa_beats_identity_on_uniform_data_small_epsilon(self):
        # DAWA's partition merges (near-)uniform regions, so on uniform data at
        # a small budget it reliably beats per-cell Laplace measurements.
        x = load_1d("UNIFORM", n=256, scale=10_000)
        workload = random_range_workload(256, 40, seed=2)
        identity_errors, dawa_errors = [], []
        for seed in range(4):
            source = _source(x, epsilon=0.01, seed=seed)
            identity_errors.append(
                per_query_l2_error(workload, x, IdentityPlan().run(source, 0.01).x_hat)
            )
            source = _source(x, epsilon=0.01, seed=seed + 100)
            dawa_errors.append(
                per_query_l2_error(
                    workload, x, DawaPlan(workload_intervals=workload.intervals).run(source, 0.01).x_hat
                )
            )
        assert np.mean(dawa_errors) < np.mean(identity_errors)

    def test_budget_enforced_across_plans(self, data_1d, workload_1d):
        source = _source(data_1d, epsilon=1.0, seed=0)
        IdentityPlan().run(source, 0.6)
        from repro.private import BudgetExceededError

        with pytest.raises(BudgetExceededError):
            H2Plan().run(source, 0.6)

    def test_representation_switch_gives_same_estimator_distribution(self, data_1d):
        # Same kernel seed => identical noise draws => identical results across
        # representations (they are lossless re-encodings of the same matrix).
        results = []
        for representation in ("implicit", "sparse", "dense"):
            source = _source(data_1d, epsilon=1.0, seed=9)
            results.append(H2Plan(representation=representation).run(source, 1.0).x_hat)
        assert np.allclose(results[0], results[1], atol=1e-6)
        assert np.allclose(results[0], results[2], atol=1e-6)


class TestTwoDimensionalPlans:
    @pytest.fixture(scope="class")
    def data_2d(self):
        return load_2d("MIXTURE2D", (16, 16), scale=40_000)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: QuadtreePlan((16, 16)),
            lambda: UniformGridPlan((16, 16)),
            lambda: AdaptiveGridPlan((16, 16)),
        ],
    )
    def test_runs_and_spends_exact_budget(self, factory, data_2d):
        plan = factory()
        source = _source(data_2d, epsilon=1.0, seed=7)
        result = plan.run(source, 1.0)
        assert result.x_hat.shape == (256,)
        assert result.budget_spent == pytest.approx(1.0, abs=1e-9)

    def test_shape_mismatch_rejected(self, data_2d):
        source = _source(data_2d, epsilon=1.0, seed=0)
        with pytest.raises(ValueError):
            QuadtreePlan((8, 8)).run(source, 1.0)

    def test_quadtree_tracks_totals(self, data_2d):
        source = _source(data_2d, epsilon=10.0, seed=8)
        result = QuadtreePlan((16, 16)).run(source, 10.0)
        assert np.isclose(result.x_hat.sum(), data_2d.sum(), rtol=0.05)
