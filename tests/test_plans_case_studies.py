"""Tests for the case-study plans: MWEM variants, striped census plans, PrivBayes,
the CDF estimator and the Naive Bayes plans (Sec. 9)."""

import numpy as np
import pytest

from repro.analysis import per_query_l2_error, roc_auc
from repro.dataset import load_1d, small_census, synthetic_credit_default
from repro.plans import (
    DawaStripedPlan,
    HbStripedKronPlan,
    HbStripedPlan,
    IdentityPlan,
    MwemPlan,
    MwemVariantB,
    MwemVariantC,
    MwemVariantD,
    PrivBayesLsPlan,
    PrivBayesPlan,
    cdf_estimator,
    nb_identity,
    nb_select_ls,
    nb_workload,
    nb_workload_ls,
)
from repro.private import protect
from repro.workload import random_range_workload, two_way_marginals_workload
from tests.conftest import make_vector_relation


def _source(x, epsilon=1.0, seed=0):
    return protect(make_vector_relation(np.asarray(x, dtype=float)), epsilon, seed=seed).vectorize()


class TestMwemVariants:
    @pytest.fixture(scope="class")
    def setup(self):
        x = load_1d("BIMODAL", n=128, scale=20_000)
        workload = random_range_workload(128, 40, seed=11)
        return x, workload

    @pytest.mark.parametrize("variant", [MwemVariantB, MwemVariantC, MwemVariantD])
    def test_runs_and_spends_exact_budget(self, variant, setup):
        x, workload = setup
        plan = variant(workload, rounds=4)
        source = _source(x, epsilon=0.5, seed=1)
        result = plan.run(source, 0.5)
        assert result.budget_spent == pytest.approx(0.5, abs=1e-9)
        assert np.all(np.isfinite(result.x_hat))

    def test_variant_b_measures_more_queries_per_round(self, setup):
        x, workload = setup
        base = MwemPlan(workload, rounds=4)
        variant = MwemVariantB(workload, rounds=4)
        base_result = base.run(_source(x, 1.0, seed=2), 1.0)
        variant_result = variant.run(_source(x, 1.0, seed=2), 1.0)
        assert variant_result.info["measured_queries"] > base_result.info["rounds"]

    def test_augmented_variants_improve_error_on_average(self, setup):
        x, workload = setup
        base_errors, variant_errors = [], []
        for seed in range(4):
            base = MwemPlan(workload, rounds=5).run(_source(x, 0.1, seed=seed), 0.1)
            augmented = MwemVariantD(workload, rounds=5).run(_source(x, 0.1, seed=seed + 50), 0.1)
            base_errors.append(per_query_l2_error(workload, x, base.x_hat))
            variant_errors.append(per_query_l2_error(workload, x, augmented.x_hat))
        assert np.mean(variant_errors) < np.mean(base_errors) * 1.5  # not catastrophically worse
        # And in the typical case it is actually better.
        assert np.median(variant_errors) <= np.median(base_errors) * 1.1


class TestStripedPlans:
    @pytest.fixture(scope="class")
    def census(self):
        relation = small_census(4000, seed=21)
        return relation, relation.vectorize(), relation.schema.domain

    @pytest.mark.parametrize(
        "factory",
        [
            lambda domain: HbStripedPlan(domain, stripe_axis=0),
            lambda domain: DawaStripedPlan(domain, stripe_axis=0),
            lambda domain: HbStripedKronPlan(domain, stripe_axis=0),
        ],
    )
    def test_runs_and_spends_exact_budget(self, factory, census):
        relation, x_true, domain = census
        plan = factory(domain)
        source = protect(relation, 1.0, seed=5).vectorize()
        result = plan.run(source, 1.0)
        assert result.x_hat.shape == (relation.domain_size,)
        assert result.budget_spent == pytest.approx(1.0, abs=1e-9)

    def test_striped_beats_identity_at_small_epsilon(self, census):
        relation, x_true, domain = census
        workload = two_way_marginals_workload(domain)
        epsilon = 0.05
        identity_result = IdentityPlan().run(protect(relation, epsilon, seed=1).vectorize(), epsilon)
        striped_result = DawaStripedPlan(domain, stripe_axis=0).run(
            protect(relation, epsilon, seed=2).vectorize(), epsilon
        )
        identity_error = per_query_l2_error(workload, x_true, identity_result.x_hat)
        striped_error = per_query_l2_error(workload, x_true, striped_result.x_hat)
        assert striped_error < identity_error

    def test_kron_and_partition_formulations_are_consistent(self, census):
        relation, x_true, domain = census
        workload = two_way_marginals_workload(domain)
        errors = {}
        for name, plan in [
            ("partition", HbStripedPlan(domain, stripe_axis=0)),
            ("kron", HbStripedKronPlan(domain, stripe_axis=0)),
        ]:
            result = plan.run(protect(relation, 1.0, seed=9).vectorize(), 1.0)
            errors[name] = per_query_l2_error(workload, x_true, result.x_hat)
        # Same measurement strategy, same budget: errors within a small factor.
        ratio = errors["partition"] / errors["kron"]
        assert 0.2 < ratio < 5.0

    def test_domain_mismatch_rejected(self, census):
        relation, _, domain = census
        source = protect(relation, 1.0, seed=0).vectorize()
        with pytest.raises(ValueError):
            HbStripedPlan((10, 10), stripe_axis=0).run(source, 1.0)


class TestPrivBayesPlans:
    @pytest.fixture(scope="class")
    def census(self):
        relation = small_census(4000, seed=31)
        return relation, relation.vectorize(), relation.schema.domain

    @pytest.mark.parametrize("factory", [PrivBayesPlan, PrivBayesLsPlan])
    def test_runs_and_spends_exact_budget(self, factory, census):
        relation, x_true, domain = census
        plan = factory(domain, seed=1)
        source = protect(relation, 1.0, seed=3).vectorize()
        result = plan.run(source, 1.0)
        assert result.budget_spent == pytest.approx(1.0, abs=1e-9)
        assert np.all(result.x_hat >= -1e-9)

    def test_ls_variant_error_is_comparable(self, census):
        # On the paper's 1.4M-cell census, swapping the factorised combine for
        # least squares improves error (Table 5); on this scaled-down test
        # census the factorised baseline is competitive, so here we only check
        # that the LS variant runs and stays within an order of magnitude.
        # The full-domain comparison is produced by bench_table5_census.
        relation, x_true, domain = census
        workload = two_way_marginals_workload(domain)
        baseline_errors, ls_errors = [], []
        for seed in range(3):
            baseline = PrivBayesPlan(domain, seed=seed).run(
                protect(relation, 0.5, seed=seed).vectorize(), 0.5
            )
            with_ls = PrivBayesLsPlan(domain, seed=seed).run(
                protect(relation, 0.5, seed=seed + 40).vectorize(), 0.5
            )
            baseline_errors.append(per_query_l2_error(workload, x_true, baseline.x_hat))
            ls_errors.append(per_query_l2_error(workload, x_true, with_ls.x_hat))
        assert np.all(np.isfinite(ls_errors))
        assert np.mean(ls_errors) <= np.mean(baseline_errors) * 20.0


class TestCdfEstimator:
    def test_returns_nondecreasing_cdf(self):
        relation = small_census(3000, seed=41)
        source = protect(relation, 1.0, seed=1)
        cdf = cdf_estimator(source, "income", 1.0, where={"gender": 0})
        assert cdf.shape == (50,)
        assert np.all(np.diff(cdf) >= -1e-9)

    def test_cdf_tracks_truth_at_high_epsilon(self):
        relation = small_census(3000, seed=42)
        filtered = relation.where({"gender": 0})
        truth = np.cumsum(filtered.projection_vector(["income"]))
        source = protect(relation, 100.0, seed=2)
        cdf = cdf_estimator(source, "income", 100.0, where={"gender": 0})
        assert np.abs(cdf - truth).max() / truth.max() < 0.1

    def test_filter_reduces_total(self):
        relation = small_census(3000, seed=43)
        source = protect(relation, 50.0, seed=3)
        cdf_male = cdf_estimator(source, "income", 25.0, where={"gender": 0})
        source2 = protect(relation, 50.0, seed=4)
        cdf_all = cdf_estimator(source2, "income", 25.0)
        assert cdf_male[-1] < cdf_all[-1]


class TestNaiveBayesPlans:
    @pytest.fixture(scope="class")
    def credit(self):
        relation = synthetic_credit_default(num_records=6000, seed=51)
        predictors = ["education", "marriage", "age", "pay_0"]
        features = relation.records[:, [relation.schema.index_of(p) for p in predictors]]
        return relation, predictors, features

    @pytest.mark.parametrize("fit", [nb_identity, nb_workload, nb_workload_ls, nb_select_ls])
    def test_fits_a_valid_model(self, fit, credit):
        relation, predictors, features = credit
        model = fit(relation, "default", predictors, epsilon=1.0, seed=1)
        scores = model.decision_scores(features)
        assert np.all(np.isfinite(scores))
        auc = roc_auc(relation.column("default"), scores)
        assert 0.4 <= auc <= 1.0

    def test_high_epsilon_approaches_exact_model(self, credit):
        relation, predictors, features = credit
        from repro.analysis import fit_naive_bayes_exact

        exact = fit_naive_bayes_exact(relation, "default", predictors)
        exact_auc = roc_auc(relation.column("default"), exact.decision_scores(features))
        dp = nb_workload_ls(relation, "default", predictors, epsilon=50.0, seed=2)
        dp_auc = roc_auc(relation.column("default"), dp.decision_scores(features))
        assert dp_auc > exact_auc - 0.03

    def test_select_ls_beats_identity_at_small_epsilon(self, credit):
        relation, predictors, features = credit
        label = relation.column("default")
        identity_aucs, select_aucs = [], []
        for seed in range(3):
            identity_model = nb_identity(relation, "default", predictors, epsilon=0.05, seed=seed)
            select_model = nb_select_ls(relation, "default", predictors, epsilon=0.05, seed=seed)
            identity_aucs.append(roc_auc(label, identity_model.decision_scores(features)))
            select_aucs.append(roc_auc(label, select_model.decision_scores(features)))
        assert np.mean(select_aucs) > np.mean(identity_aucs)
