"""Unit tests for partition-selection operators (AHP, DAWA, workload-based, structural)."""

import numpy as np
import pytest

from repro.matrix import Identity, Kronecker, Prefix, RangeQueries, Total, VStack, marginal
from repro.operators.partition import (
    ahp_partition,
    ahp_partition_from_noisy,
    cluster_sorted_counts,
    dawa_partition,
    dawa_partition_from_noisy,
    grid_partition,
    l1_partition,
    marginal_partition,
    reduce_workload_and_vector,
    stripe_partition,
    uniform_chunks_partition,
    workload_based_partition,
)
from repro.private import protect
from tests.conftest import make_vector_relation


def _vector_source(x, epsilon=10.0, seed=0):
    return protect(make_vector_relation(np.asarray(x, dtype=float)), epsilon, seed=seed).vectorize()


class TestAhp:
    def test_clusters_similar_counts(self):
        noisy = np.array([0.1, 0.2, 0.0, 100.0, 101.0, 99.5, 0.05, 0.1])
        assignment = cluster_sorted_counts(noisy)
        small_groups = set(assignment[[0, 1, 2, 6, 7]])
        large_groups = set(assignment[[3, 4, 5]])
        assert small_groups.isdisjoint(large_groups)

    def test_from_noisy_groups_uniform_regions(self):
        noisy = np.concatenate([np.full(10, 2.0), np.full(10, 500.0)])
        partition = ahp_partition_from_noisy(noisy, epsilon=1.0)
        groups_low = set(partition.groups[:10])
        groups_high = set(partition.groups[10:])
        assert groups_low.isdisjoint(groups_high)

    def test_operator_consumes_budget(self):
        x = np.concatenate([np.zeros(16), np.full(16, 50.0)])
        source = _vector_source(x, epsilon=1.0, seed=2)
        partition = ahp_partition(source, epsilon=0.5)
        assert source.budget_consumed() == pytest.approx(0.5)
        assert partition.shape[1] == 32

    def test_reduces_domain(self):
        x = np.concatenate([np.zeros(32), np.full(32, 40.0)])
        source = _vector_source(x, epsilon=5.0, seed=3)
        partition = ahp_partition(source, epsilon=2.0)
        assert partition.num_groups < 64


class TestDawa:
    def test_l1_partition_finds_uniform_segments(self):
        rng = np.random.default_rng(0)
        x = np.concatenate([np.full(32, 10.0), np.full(32, 200.0), np.full(64, 0.0)])
        noisy = x + rng.laplace(0, 1.0, len(x))
        assignment = l1_partition(noisy, noise_scale=1.0)
        num_groups = len(np.unique(assignment))
        assert num_groups < 20  # merged large uniform regions

    def test_groups_are_contiguous(self):
        rng = np.random.default_rng(1)
        noisy = rng.laplace(10, 2.0, 64)
        assignment = l1_partition(noisy, noise_scale=2.0)
        # Contiguity: group ids are non-decreasing along the domain.
        assert np.all(np.diff(assignment) >= 0)

    def test_noisier_measurements_give_coarser_partitions(self):
        rng = np.random.default_rng(2)
        x = rng.integers(0, 30, 128).astype(float)
        fine = dawa_partition_from_noisy(x + rng.laplace(0, 0.1, 128), epsilon=10.0)
        coarse = dawa_partition_from_noisy(x + rng.laplace(0, 10.0, 128), epsilon=0.1)
        assert coarse.num_groups <= fine.num_groups

    def test_operator_consumes_budget(self):
        x = np.concatenate([np.zeros(16), np.full(16, 50.0)])
        source = _vector_source(x, epsilon=1.0, seed=4)
        dawa_partition(source, epsilon=0.25)
        assert source.budget_consumed() == pytest.approx(0.25)


class TestWorkloadBased:
    def test_groups_identical_columns(self):
        # Census example 8.1: two non-overlapping conditions -> 2 groups... plus
        # untouched cells form a third group.
        w = RangeQueries(10, [(0, 4), (5, 7)])
        partition = workload_based_partition(w)
        assert partition.num_groups == 3

    def test_identity_workload_admits_no_reduction(self):
        partition = workload_based_partition(Identity(12))
        assert partition.num_groups == 12

    def test_total_workload_reduces_to_one_group(self):
        partition = workload_based_partition(Total(12))
        assert partition.num_groups == 1

    def test_reduction_is_lossless(self):
        rng = np.random.default_rng(5)
        w = VStack([RangeQueries(20, [(0, 9), (10, 19), (5, 14)]), Total(20)])
        x = rng.integers(0, 50, 20).astype(float)
        reduced_w, reduced_x, partition = reduce_workload_and_vector(w, x)
        assert np.allclose(w.matvec(x), reduced_w.matvec(reduced_x))
        assert partition.num_groups < 20

    def test_marginal_workload_on_kron_domain(self):
        domain = (4, 3, 2)
        w = marginal(domain, [0])
        partition = workload_based_partition(w)
        # The marginal over attribute 0 cannot distinguish cells that share the
        # attribute-0 value: exactly 4 groups remain.
        assert partition.num_groups == 4

    def test_works_on_implicit_prefix(self):
        partition = workload_based_partition(Prefix(32))
        assert partition.num_groups == 32  # prefix queries distinguish every cell


class TestStructural:
    def test_stripe_partition_groups(self):
        partition = stripe_partition((4, 3, 2), stripe_axis=0)
        assert partition.num_groups == 6
        for idx in partition.split_indices():
            assert len(idx) == 4

    def test_stripe_partition_groups_fix_other_attributes(self):
        domain = (3, 2, 2)
        partition = stripe_partition(domain, stripe_axis=0)
        coordinates = np.array(np.unravel_index(np.arange(np.prod(domain)), domain)).T
        for idx in partition.split_indices():
            rest = coordinates[idx][:, 1:]
            assert len(np.unique(rest, axis=0)) == 1

    def test_grid_partition(self):
        partition = grid_partition(4, 6, 2, 3)
        assert partition.num_groups == 4
        assert all(len(idx) == 6 for idx in partition.split_indices())

    def test_marginal_partition_matches_marginal_matrix(self):
        domain = (3, 4, 2)
        rng = np.random.default_rng(6)
        x = rng.integers(0, 10, int(np.prod(domain))).astype(float)
        partition = marginal_partition(domain, [0, 2])
        reduced = partition.reduce_vector(x)
        expected = marginal(domain, [0, 2]).matvec(x)
        assert np.allclose(reduced, expected)

    def test_uniform_chunks(self):
        partition = uniform_chunks_partition(10, 3)
        assert partition.num_groups == 3
        assert np.all(np.diff(partition.groups) >= 0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            stripe_partition((4, 3), stripe_axis=7)
        with pytest.raises(ValueError):
            grid_partition(4, 4, 0, 2)
        with pytest.raises(ValueError):
            marginal_partition((4, 3), [9])
        with pytest.raises(ValueError):
            uniform_chunks_partition(10, 0)
