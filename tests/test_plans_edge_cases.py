"""Edge-case and error-path tests for the plan library."""

import numpy as np
import pytest

from repro.dataset import load_1d, load_2d
from repro.matrix import Identity, Kronecker, Prefix, Total, VStack
from repro.plans import (
    AhpPlan,
    DawaPlan,
    GreedyHPlan,
    HdmmPlan,
    IdentityPlan,
    MwemPlan,
    PriveletPlan,
    UniformGridPlan,
    UniformPlan,
)
from repro.private import protect
from repro.workload import random_range_workload
from tests.conftest import make_vector_relation


def _source(x, epsilon=1.0, seed=0):
    return protect(make_vector_relation(np.asarray(x, dtype=float)), epsilon, seed=seed).vectorize()


class TestErrorPaths:
    def test_privelet_rejects_non_power_of_two_domain(self):
        x = np.ones(100)
        source = _source(x)
        with pytest.raises(ValueError):
            PriveletPlan().run(source, 1.0)

    def test_hdmm_rejects_mismatched_workload(self):
        x = np.ones(64)
        source = _source(x)
        with pytest.raises(ValueError):
            HdmmPlan(Prefix(32)).run(source, 1.0)

    def test_mwem_rejects_mismatched_workload(self):
        x = np.ones(64)
        source = _source(x)
        with pytest.raises(ValueError):
            MwemPlan(Prefix(32)).run(source, 1.0)

    def test_uniform_grid_rejects_bad_shape(self):
        x = np.ones(64)
        source = _source(x)
        with pytest.raises(ValueError):
            UniformGridPlan((5, 5)).run(source, 1.0)

    def test_plan_with_zero_epsilon_rejected(self):
        x = np.ones(16)
        source = _source(x)
        with pytest.raises(ValueError):
            IdentityPlan().run(source, 0.0)


class TestSmallDomains:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_identity_and_uniform_on_tiny_domains(self, n):
        x = np.arange(n, dtype=float) + 1.0
        for plan in [IdentityPlan(), UniformPlan()]:
            source = _source(x, epsilon=10.0, seed=1)
            result = plan.run(source, 10.0)
            assert result.x_hat.shape == (n,)

    def test_dawa_on_tiny_domain(self):
        x = np.array([5.0, 5.0, 50.0, 50.0])
        source = _source(x, epsilon=5.0, seed=2)
        result = DawaPlan().run(source, 5.0)
        assert result.x_hat.shape == (4,)

    def test_ahp_on_all_zero_data(self):
        x = np.zeros(32)
        source = _source(x, epsilon=1.0, seed=3)
        result = AhpPlan().run(source, 1.0)
        assert np.all(np.isfinite(result.x_hat))

    def test_greedy_h_without_workload(self):
        x = load_1d("GAUSSIAN", 64, 5000)
        source = _source(x, epsilon=1.0, seed=4)
        result = GreedyHPlan().run(source, 1.0)
        assert result.budget_spent == pytest.approx(1.0)

    def test_mwem_single_round(self):
        x = load_1d("BIMODAL", 32, 5000)
        workload = random_range_workload(32, 10, seed=1)
        source = _source(x, epsilon=0.5, seed=5)
        result = MwemPlan(workload, rounds=1).run(source, 0.5)
        assert result.info["rounds"] == 1


class TestHdmmWorkloadShapes:
    def test_union_of_mixed_krons_falls_back_gracefully(self):
        w = VStack(
            [
                Kronecker([Prefix(4), Total(3)]),
                Kronecker([Identity(4), Identity(3)]),
            ]
        )
        x = np.arange(12, dtype=float)
        source = _source(x, epsilon=2.0, seed=6)
        result = HdmmPlan(w).run(source, 2.0)
        assert result.x_hat.shape == (12,)

    def test_plain_dense_workload(self):
        rng = np.random.default_rng(0)
        from repro.matrix import DenseMatrix

        w = DenseMatrix(rng.integers(0, 2, size=(5, 16)).astype(float))
        x = rng.integers(0, 20, 16).astype(float)
        source = _source(x, epsilon=2.0, seed=7)
        result = HdmmPlan(w).run(source, 2.0)
        assert result.budget_spent == pytest.approx(2.0)


class TestInfoDiagnostics:
    def test_plan_results_carry_diagnostics(self):
        x = load_1d("PIECEWISE", 64, 10_000)
        source = _source(x, epsilon=1.0, seed=8)
        result = AhpPlan().run(source, 1.0)
        assert "num_groups" in result.info
        assert 1 <= result.info["num_groups"] <= 64

    def test_adaptive_grid_reports_second_level(self):
        from repro.plans import AdaptiveGridPlan

        x = load_2d("GAUSS2D", (16, 16), 100_000)
        source = _source(x, epsilon=1.0, seed=9)
        result = AdaptiveGridPlan((16, 16)).run(source, 1.0)
        assert "second_level_blocks" in result.info
