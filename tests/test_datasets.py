"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.dataset import (
    CENSUS_DOMAIN,
    DATASETS_1D,
    PREDICTOR_DOMAIN,
    census_schema,
    load_1d,
    load_2d,
    load_all_1d,
    small_census,
    synthetic_cps,
    synthetic_credit_default,
)


class TestCensus:
    def test_schema_matches_paper_domain(self):
        schema = census_schema()
        assert schema.domain == CENSUS_DOMAIN
        assert schema.domain_size == 1_400_000

    def test_synthetic_cps_is_deterministic(self):
        a = synthetic_cps(num_records=500, income_bins=20, seed=3)
        b = synthetic_cps(num_records=500, income_bins=20, seed=3)
        assert np.array_equal(a.records, b.records)

    def test_different_seeds_differ(self):
        a = synthetic_cps(num_records=500, income_bins=20, seed=3)
        b = synthetic_cps(num_records=500, income_bins=20, seed=4)
        assert not np.array_equal(a.records, b.records)

    def test_small_census_domains(self):
        rel = small_census(num_records=1000, seed=1)
        assert rel.schema.domain == (50, 5, 7, 4, 2)
        assert len(rel) == 1000

    def test_income_correlates_with_age(self):
        rel = small_census(num_records=20000, seed=2)
        income = rel.column("income").astype(float)
        age = rel.column("age").astype(float)
        young = income[age <= 1].mean()
        mid = income[(age >= 2) & (age <= 3)].mean()
        assert mid > young  # mid-career earns more than early-career

    def test_all_values_in_domain(self):
        rel = small_census(num_records=2000, seed=5)
        for j, attr in enumerate(rel.schema):
            col = rel.records[:, j]
            assert col.min() >= 0
            assert col.max() < attr.size


class TestCredit:
    def test_predictor_domain_size_matches_paper(self):
        assert int(np.prod(PREDICTOR_DOMAIN)) == 17_248

    def test_label_prevalence_reasonable(self):
        rel = synthetic_credit_default(num_records=20000, seed=0)
        rate = rel.column("default").mean()
        assert 0.1 < rate < 0.5

    def test_pay_status_predicts_default(self):
        rel = synthetic_credit_default(num_records=30000, seed=1)
        label = rel.column("default")
        pay = rel.column("pay_0")
        high_delay = label[pay >= 5].mean()
        low_delay = label[pay <= 2].mean()
        assert high_delay > low_delay + 0.2

    def test_deterministic(self):
        a = synthetic_credit_default(num_records=1000, seed=9)
        b = synthetic_credit_default(num_records=1000, seed=9)
        assert np.array_equal(a.records, b.records)


class TestDpbench:
    def test_all_named_datasets_load(self):
        data = load_all_1d(n=256, scale=5000)
        assert set(data) == set(DATASETS_1D)
        for name, x in data.items():
            assert x.shape == (256,)
            assert np.all(x >= 0)
            assert np.isclose(x.sum(), 5000)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_1d("NOPE", 64)

    def test_seed_controls_output(self):
        a = load_1d("GAUSSIAN", 128, 1000, seed=1)
        b = load_1d("GAUSSIAN", 128, 1000, seed=2)
        assert not np.array_equal(a, b)

    def test_sparse_dataset_is_sparse(self):
        x = load_1d("SPARSE", 1024, 100_000)
        assert (x == 0).mean() > 0.5

    def test_uniform_dataset_is_flat(self):
        x = load_1d("UNIFORM", 128, 1_000_000)
        assert x.std() / x.mean() < 0.2

    def test_2d_datasets(self):
        for name in ["UNIFORM2D", "GAUSS2D", "MIXTURE2D", "SPARSE2D"]:
            x = load_2d(name, (16, 24), 2000)
            assert x.shape == (16 * 24,)
            assert np.isclose(x.sum(), 2000)

    def test_2d_unknown_rejected(self):
        with pytest.raises(KeyError):
            load_2d("NOPE", (8, 8))
