"""Unit tests for range-query and hierarchical matrix constructions."""

import numpy as np
import pytest

from repro.matrix import (
    HierarchicalQueries,
    RangeQueries,
    RangeQueries2D,
    hierarchical_intervals,
    optimal_branching_factor,
    quadtree_rects,
)


class TestRangeQueries:
    def test_dense_rows_are_indicator_ranges(self):
        r = RangeQueries(6, [(1, 3), (0, 5)])
        dense = r.dense()
        assert np.array_equal(dense[0], [0, 1, 1, 1, 0, 0])
        assert np.array_equal(dense[1], [1, 1, 1, 1, 1, 1])

    def test_matvec_matches_dense(self):
        rng = np.random.default_rng(0)
        r = RangeQueries(20, [(0, 4), (5, 19), (3, 10), (7, 7)])
        v = rng.normal(size=20)
        assert np.allclose(r.matvec(v), r.dense() @ v)

    def test_rmatvec_matches_dense(self):
        rng = np.random.default_rng(1)
        r = RangeQueries(20, [(0, 4), (5, 19), (3, 10)])
        u = rng.normal(size=3)
        assert np.allclose(r.rmatvec(u), r.dense().T @ u)

    def test_sensitivity_is_max_coverage(self):
        r = RangeQueries(10, [(0, 9), (2, 5), (3, 3)])
        assert r.sensitivity() == np.abs(r.dense()).sum(axis=0).max()

    def test_abs_square_are_noops(self):
        r = RangeQueries(5, [(0, 2)])
        assert abs(r) is r
        assert r.square() is r

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            RangeQueries(5, [(3, 7)])
        with pytest.raises(ValueError):
            RangeQueries(5, [])

    def test_row(self):
        r = RangeQueries(5, [(1, 3)])
        assert np.allclose(r.row(0), [0, 1, 1, 1, 0])


class TestHierarchicalQueries:
    def test_includes_identity_and_root(self):
        h = HierarchicalQueries(8, branching=2)
        dense = h.dense()
        # First 8 rows are the identity.
        assert np.array_equal(dense[:8], np.eye(8))
        # Some row is the full-domain total.
        assert any(np.array_equal(row, np.ones(8)) for row in dense)

    def test_matvec_matches_dense(self):
        rng = np.random.default_rng(2)
        h = HierarchicalQueries(16, branching=4)
        v = rng.normal(size=16)
        assert np.allclose(h.matvec(v), h.dense() @ v)

    def test_rmatvec_matches_dense(self):
        rng = np.random.default_rng(3)
        h = HierarchicalQueries(16, branching=3)
        u = rng.normal(size=h.shape[0])
        assert np.allclose(h.rmatvec(u), h.dense().T @ u)

    def test_full_column_rank(self):
        h = HierarchicalQueries(12, branching=2)
        assert np.linalg.matrix_rank(h.dense()) == 12

    def test_hierarchical_intervals_cover_domain(self):
        intervals = hierarchical_intervals(10, branching=2)
        assert (0, 9) in intervals
        for lo, hi in intervals:
            assert 0 <= lo <= hi <= 9
            assert hi - lo + 1 >= 2  # unit intervals excluded

    def test_invalid_branching(self):
        with pytest.raises(ValueError):
            hierarchical_intervals(8, branching=1)


class TestOptimalBranching:
    def test_within_range(self):
        for n in [2, 10, 100, 4096, 10**6]:
            b = optimal_branching_factor(n)
            assert 2 <= b <= 16

    def test_monotone_reasonable(self):
        # Larger domains favour larger branching factors (weakly).
        assert optimal_branching_factor(10**6) >= optimal_branching_factor(16)


class TestRangeQueries2D:
    def test_dense_rectangles(self):
        r = RangeQueries2D(3, 4, [(0, 1, 1, 2)])
        block = r.dense()[0].reshape(3, 4)
        expected = np.zeros((3, 4))
        expected[0:2, 1:3] = 1.0
        assert np.array_equal(block, expected)

    def test_matvec_matches_dense(self):
        rng = np.random.default_rng(4)
        rects = [(0, 2, 0, 2), (1, 3, 2, 5), (0, 0, 0, 0)]
        r = RangeQueries2D(4, 6, rects)
        v = rng.normal(size=24)
        assert np.allclose(r.matvec(v), r.dense() @ v)

    def test_rmatvec_matches_dense(self):
        rng = np.random.default_rng(5)
        rects = [(0, 2, 0, 2), (1, 3, 2, 5)]
        r = RangeQueries2D(4, 6, rects)
        u = rng.normal(size=2)
        assert np.allclose(r.rmatvec(u), r.dense().T @ u)

    def test_out_of_domain_rect_rejected(self):
        with pytest.raises(ValueError):
            RangeQueries2D(3, 3, [(0, 3, 0, 2)])


class TestQuadtree:
    def test_root_covers_domain(self):
        rects = quadtree_rects(8, 8)
        assert (0, 7, 0, 7) in rects

    def test_leaves_reach_min_size(self):
        rects = quadtree_rects(8, 8, min_size=1)
        unit_cells = [r for r in rects if r[0] == r[1] and r[2] == r[3]]
        assert len(unit_cells) == 64

    def test_all_rects_valid(self):
        for r_lo, r_hi, c_lo, c_hi in quadtree_rects(5, 9, min_size=2):
            assert 0 <= r_lo <= r_hi < 5
            assert 0 <= c_lo <= c_hi < 9
