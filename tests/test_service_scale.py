"""Execution-core tests: executor backends, sharding, shared cache tiers.

The invariants of the scale-out layer:

* **backend transparency** — answers (payloads, seeds, spends) are
  byte-identical across the inline, thread and process backends, because
  noise seeds derive only from (base seed, request id, query identity);
* **exact adoption** — plan compute in a worker process charges the live
  session's ledger exactly (reconciliation holds), and remote failures
  surface as the original exception types;
* **routing stability** — a session is never observed on two shards: the
  directory answers every lookup, and ring changes move nothing until an
  explicit migration, which itself reconciles exactly;
* **bounded caches** — both caches are LRU with touch-on-hit and eviction
  counters, and evicting a released answer never loses it: the journal
  replays it at zero additional ε after a restore.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.dataset import Attribute, Relation, Schema
from repro.durability import PrivacyJournal
from repro.private import BudgetExceededError
from repro.service import (
    ArtifactCache,
    InlineExecutor,
    MeasurementCache,
    PlanScheduler,
    ProcessExecutor,
    QueryRequest,
    QueryResponse,
    SessionClosedError,
    SessionManager,
    SharedArtifactStore,
    ShardRouter,
    ThreadExecutor,
    derive_request_seed,
    make_executor,
    reconcile,
)
from repro.telemetry.metrics import MetricsRegistry

N = 64


@pytest.fixture
def relation():
    rng = np.random.default_rng(0)
    schema = Schema.build([Attribute("v", N)])
    return Relation.from_histogram(schema, rng.integers(0, 50, size=N).astype(float))


@pytest.fixture(scope="module")
def process_executor():
    """One process pool for the whole module — worker start-up is the cost."""
    executor = ProcessExecutor(max_workers=2)
    yield executor
    executor.shutdown()


def _requests(session_id: str) -> list[QueryRequest]:
    return [
        QueryRequest(
            session_id,
            plan="Identity",
            epsilon=0.1,
            workload="prefix",
            workload_params={"n": N},
        ),
        QueryRequest(session_id, plan="Identity", epsilon=0.2, reuse=False),
        QueryRequest(
            session_id,
            plan="Identity",
            epsilon=0.05,
            workload="all_range",
            workload_params={"n": N},
        ),
    ]


def _run_backend(relation, executor) -> tuple[list[QueryResponse], object]:
    manager = SessionManager()
    scheduler = PlanScheduler(manager, executor=executor)
    session = manager.create_session(
        "acme", relation, 10.0, seed=7, session_id="acme-s1"
    )
    responses = scheduler.execute_batch(_requests("acme-s1"))
    if not isinstance(executor, ProcessExecutor):
        scheduler.shutdown()
    return responses, session


class TestExecutorBackends:
    def test_make_executor_resolution(self):
        assert isinstance(make_executor(None), ThreadExecutor)
        assert isinstance(make_executor("thread"), ThreadExecutor)
        assert isinstance(make_executor("inline"), InlineExecutor)
        inline = InlineExecutor()
        assert make_executor(inline) is inline
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("bogus")

    def test_answers_byte_identical_across_backends(self, relation, process_executor):
        base, inline_session = _run_backend(relation, "inline")
        threaded, _ = _run_backend(relation, "thread")
        processed, process_session = _run_backend(relation, process_executor)
        for other in (threaded, processed):
            for expected, got in zip(base, other):
                assert np.array_equal(expected.payload, got.payload)
                assert np.array_equal(expected.x_hat, got.x_hat)
                assert got.seed == expected.seed
                assert got.epsilon_spent == expected.epsilon_spent
        assert process_session.budget_consumed() == inline_session.budget_consumed()
        assert reconcile(inline_session)["exact"]
        assert reconcile(process_session)["exact"]

    def test_process_backend_adopts_into_journaled_ledger(
        self, relation, process_executor
    ):
        journal = PrivacyJournal(None, fsync="never")
        manager = SessionManager()
        scheduler = PlanScheduler(manager, executor=process_executor)
        session = manager.create_session(
            "acme", relation, 4.0, seed=3, journal=journal
        )
        response = scheduler.execute(
            QueryRequest(session.session_id, plan="Identity", epsilon=0.5)
        )
        assert response.epsilon_spent > 0
        assert session.budget_consumed() == response.epsilon_spent
        # The worker's charges were adopted through the normal charge path,
        # so the write-ahead journal saw them before the ledger moved.
        charges = [r for r in journal.records() if r.get("kind") == "charge"]
        assert charges
        assert reconcile(session)["exact"]

    def test_process_backend_propagates_original_exception(
        self, relation, process_executor
    ):
        manager = SessionManager()
        scheduler = PlanScheduler(manager, executor=process_executor)
        session = manager.create_session("acme", relation, 0.1, seed=3)
        with pytest.raises(BudgetExceededError):
            scheduler.execute(
                QueryRequest(session.session_id, plan="Identity", epsilon=0.5)
            )
        assert session.events[-1].error == "BudgetExceededError"
        assert reconcile(session)["exact"]

    def test_seed_derivation_is_scheduling_independent(self):
        seed = derive_request_seed(7, "acme-s1", "acme-s1-r1", "('query',)")
        assert seed == derive_request_seed(7, "acme-s1", "acme-s1-r1", "('query',)")
        assert seed != derive_request_seed(7, "acme-s1", "acme-s1-r2", "('query',)")
        assert seed != derive_request_seed(8, "acme-s1", "acme-s1-r1", "('query',)")


class TestArtifactCacheLRU:
    def test_touch_on_hit_evicts_least_recent(self):
        metrics = MetricsRegistry()
        cache = ArtifactCache(max_entries=2)
        cache.bind_metrics(metrics)
        built = []

        def builder(tag):
            def build():
                built.append(tag)
                return tag

            return build

        cache.get_or_build("a", builder("a"))
        cache.get_or_build("b", builder("b"))
        cache.get_or_build("a", builder("a"))  # touch: "a" is now most recent
        cache.get_or_build("c", builder("c"))  # evicts "b", not "a"
        assert "a" in cache and "c" in cache and "b" not in cache
        assert built == ["a", "b", "c"]
        stats = cache.stats
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert stats["hits"] == 1
        assert metrics.counter("cache_evictions", cache="artifact").value == 1.0
        # The evicted artifact rebuilds on demand and re-enters the cache.
        cache.get_or_build("b", builder("b"))
        assert built == ["a", "b", "c", "b"]
        assert "a" not in cache  # "a" was then the least recently used

    def test_shared_store_serves_second_cache(self):
        store = SharedArtifactStore(max_entries=8)
        try:
            first = ArtifactCache(shared=store)
            second = ArtifactCache(shared=store)
            built = []

            def build():
                built.append(1)
                return np.arange(4.0)

            a = first.get_or_build("gram", build)
            b = second.get_or_build("gram", build)
            assert np.array_equal(a, b)
            assert built == [1]  # the second cache hit the shared tier
            assert second.stats["shared_hits"] == 1
        finally:
            store.close()


class TestMeasurementCacheBound:
    def test_eviction_counters_and_bound(self, relation):
        metrics = MetricsRegistry()
        cache = MeasurementCache(max_entries=2)
        manager = SessionManager()
        scheduler = PlanScheduler(
            manager, measurement_cache=cache, metrics=metrics, executor="inline"
        )
        session = manager.create_session("acme", relation, 10.0, seed=5)
        for epsilon in (0.1, 0.2, 0.3):
            scheduler.execute(
                QueryRequest(session.session_id, plan="Identity", epsilon=epsilon)
            )
        assert len(cache) == 2
        assert cache.stats["evictions"] == 1
        assert metrics.counter("cache_evictions", cache="measurement").value == 1.0
        # The survivors still replay at zero ε; the evicted answer is gone
        # from the cache (the journal test below shows it is not *lost*).
        replay = scheduler.execute(
            QueryRequest(session.session_id, plan="Identity", epsilon=0.3)
        )
        assert replay.cached and replay.epsilon_spent == 0.0

    def test_evicted_release_replays_from_journal(self, relation, tmp_path):
        path = tmp_path / "session.wal"
        manager = SessionManager()
        scheduler = PlanScheduler(
            manager,
            measurement_cache=MeasurementCache(max_entries=1),
            executor="inline",
        )
        session = manager.create_session(
            "acme", relation, 10.0, seed=5, journal=PrivacyJournal(path)
        )
        first = scheduler.execute(
            QueryRequest(session.session_id, plan="Identity", epsilon=0.1)
        )
        # The second release evicts the first from the bounded cache.
        scheduler.execute(
            QueryRequest(session.session_id, plan="Identity", epsilon=0.2)
        )
        session.journal.close()

        fresh = PlanScheduler(SessionManager(), executor="inline")
        restored = fresh.restore_session(relation, journal=PrivacyJournal(path))
        replayed = fresh.execute(
            QueryRequest(restored.session_id, plan="Identity", epsilon=0.1)
        )
        assert replayed.cached and replayed.epsilon_spent == 0.0
        assert np.array_equal(replayed.x_hat, first.x_hat)
        assert reconcile(restored)["exact"]


class TestDrainCloseRace:
    def test_drain_close_races_execute_batch(self, relation):
        manager = SessionManager()
        scheduler = PlanScheduler(manager, max_workers=2, executor="thread")
        session = manager.create_session("acme", relation, 10.0, seed=1)
        entered, release = threading.Event(), threading.Event()
        original = scheduler._run_locked

        def slow_run(session_, request, queued_at, root):
            if not entered.is_set():
                entered.set()
                assert release.wait(timeout=10)
            return original(session_, request, queued_at, root)

        scheduler._run_locked = slow_run
        requests = [
            QueryRequest(session.session_id, plan="Identity", epsilon=0.1),
            QueryRequest(session.session_id, plan="Identity", epsilon=0.2),
        ]
        results: list = []
        batcher = threading.Thread(
            target=lambda: results.extend(
                scheduler.execute_batch(requests, return_exceptions=True)
            )
        )
        batcher.start()
        assert entered.wait(timeout=10)
        closer = threading.Thread(
            target=lambda: scheduler.close_session(session.session_id, drain=True)
        )
        closer.start()
        deadline = time.monotonic() + 10
        while not session.closing and time.monotonic() < deadline:
            time.sleep(0.001)
        assert session.closing
        assert not session.closed  # drain waits for the in-flight request
        release.set()
        batcher.join(timeout=10)
        closer.join(timeout=10)
        assert session.closed
        scheduler.shutdown()

        # The in-flight request finished and was ledgered; the queued one
        # was rejected at the lock with a SessionClosedError.
        outcomes = {type(result).__name__ for result in results}
        assert "QueryResponse" in outcomes
        assert "SessionClosedError" in outcomes
        response = next(r for r in results if isinstance(r, QueryResponse))
        assert response.epsilon_spent > 0
        rejected = next(r for r in results if isinstance(r, SessionClosedError))
        assert rejected.request_failure.error_type == "SessionClosedError"
        assert reconcile(session)["exact"]
        assert session.budget_consumed() == response.epsilon_spent


class TestSharding:
    def test_routing_is_stable_across_requests_and_ring_changes(self, relation):
        router = ShardRouter(num_shards=4)
        scheduler = PlanScheduler(router, executor="inline")
        sessions = [
            router.create_session("acme", relation, 10.0, seed=i) for i in range(12)
        ]
        owners = router.owners()
        assert len({shard.shard_id for shard in router.shards}) == 4
        for _ in range(2):  # repeated requests never move a session
            for session in sessions:
                response = scheduler.execute(
                    QueryRequest(session.session_id, plan="Identity", epsilon=0.01)
                )
                assert response.shard_id == owners[session.session_id]
                assert session.events[-1].shard_id == owners[session.session_id]
        # A new shard changes future placements but moves nothing by itself.
        plan = router.add_shard("shard-new")
        assert router.owners() == owners
        for session_id, current, target in plan:
            assert owners[session_id] == current
            assert target == "shard-new"
        for session in sessions:
            assert router.shard_for(session.session_id) == owners[session.session_id]
        scheduler.shutdown()

    def test_migrate_session_round_trip_reconciles_exactly(self, relation):
        router = ShardRouter(num_shards=4)
        scheduler = PlanScheduler(router, executor="inline")
        session = router.create_session(
            "acme", relation, 10.0, seed=7, session_id="acme-s1"
        )
        first = scheduler.execute(
            QueryRequest("acme-s1", plan="Identity", epsilon=0.1)
        )
        before_budget = session.budget_consumed()
        target = next(
            shard.shard_id
            for shard in router.shards
            if shard.shard_id != session.shard_id
        )
        moved = scheduler.migrate_session("acme-s1", target)
        assert moved.shard_id == target
        assert router.owners()["acme-s1"] == target
        assert moved.budget_consumed() == before_budget
        assert reconcile(moved)["exact"]
        assert (
            scheduler.metrics.counter(
                "service_migrations", tenant="acme", shard=target
            ).value
            == 1.0
        )
        # Released answers crossed with the session: zero-ε replay.
        replay = scheduler.execute(
            QueryRequest("acme-s1", plan="Identity", epsilon=0.1)
        )
        assert replay.cached and replay.epsilon_spent == 0.0
        assert np.array_equal(replay.x_hat, first.x_hat)
        assert replay.shard_id == target

        # New work after the move is byte-identical to an unsharded control:
        # the base seed and request counter migrated intact.
        fresh = scheduler.execute(
            QueryRequest("acme-s1", plan="Identity", epsilon=0.2)
        )
        control_manager = SessionManager()
        control = PlanScheduler(control_manager, executor="inline")
        control_manager.create_session(
            "acme", relation, 10.0, seed=7, session_id="acme-s1"
        )
        # Mirror the migrated session's request sequence exactly — the
        # cached replay consumed a request id too.
        control.execute(QueryRequest("acme-s1", plan="Identity", epsilon=0.1))
        control.execute(QueryRequest("acme-s1", plan="Identity", epsilon=0.1))
        control_fresh = control.execute(
            QueryRequest("acme-s1", plan="Identity", epsilon=0.2)
        )
        assert np.array_equal(fresh.x_hat, control_fresh.x_hat)
        assert fresh.seed == control_fresh.seed
        scheduler.shutdown()

    def test_remove_shard_migrates_everything_off(self, relation):
        router = ShardRouter(num_shards=3)
        cache = MeasurementCache()
        for i in range(9):
            router.create_session("acme", relation, 10.0, seed=i)
        victim = max(router.stats["shards"], key=router.stats["shards"].get)
        stranded = [sid for sid, owner in router.owners().items() if owner == victim]
        moves = router.remove_shard(victim, measurement_cache=cache)
        assert sorted(move[0] for move in moves) == sorted(stranded)
        owners = router.owners()
        assert len(owners) == 9
        assert victim not in set(owners.values())
        with pytest.raises(KeyError):
            router.shard(victim)
        for session in router.sessions():
            assert reconcile(session)["exact"]

    def test_migrate_requires_a_router(self, relation):
        scheduler = PlanScheduler(SessionManager(), executor="inline")
        with pytest.raises(TypeError, match="ShardRouter"):
            scheduler.migrate_session("nope", "shard-0")

    def test_sharded_answers_match_unsharded(self, relation):
        router = ShardRouter(num_shards=4)
        sharded = PlanScheduler(router, executor="inline")
        router.create_session("acme", relation, 10.0, seed=7, session_id="acme-s1")
        manager = SessionManager()
        plain = PlanScheduler(manager, executor="inline")
        manager.create_session("acme", relation, 10.0, seed=7, session_id="acme-s1")
        for request in _requests("acme-s1"):
            a = sharded.execute(request)
            b = plain.execute(request)
            assert np.array_equal(a.payload, b.payload)
            assert a.seed == b.seed
            assert a.epsilon_spent == b.epsilon_spent
        # Shard-labelled series exist on the sharded service only.
        shard_counters = [
            counter
            for counter in sharded.metrics.instruments()[0]
            if counter.name == "privacy_spend_shard"
        ]
        assert shard_counters and sum(c.value for c in shard_counters) > 0
        assert not [
            counter
            for counter in plain.metrics.instruments()[0]
            if counter.name == "privacy_spend_shard"
        ]
