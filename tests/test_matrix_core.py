"""Unit tests for the core implicit matrices."""

import numpy as np
import pytest

from repro.matrix import HaarWavelet, Identity, Ones, Prefix, Suffix, Total


class TestIdentity:
    def test_matvec_is_copy(self):
        m = Identity(5)
        v = np.arange(5.0)
        out = m.matvec(v)
        assert np.array_equal(out, v)
        out[0] = 99.0
        assert v[0] == 0.0  # no aliasing

    def test_transpose_is_self(self):
        m = Identity(4)
        assert m.T is m

    def test_dense(self):
        assert np.array_equal(Identity(3).dense(), np.eye(3))

    def test_sensitivity(self):
        assert Identity(10).sensitivity() == 1.0
        assert Identity(10).sensitivity_l2() == 1.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Identity(0)


class TestOnesAndTotal:
    def test_matvec(self):
        m = Ones(3, 4)
        v = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(m.matvec(v), [10.0, 10.0, 10.0])

    def test_rmatvec(self):
        m = Ones(3, 4)
        u = np.array([1.0, 1.0, 2.0])
        assert np.allclose(m.rmatvec(u), [4.0, 4.0, 4.0, 4.0])

    def test_transpose_shape(self):
        assert Ones(3, 4).T.shape == (4, 3)

    def test_total_is_single_row(self):
        t = Total(6)
        assert t.shape == (1, 6)
        assert np.allclose(t.matvec(np.ones(6)), [6.0])

    def test_sensitivity(self):
        assert Ones(5, 2).sensitivity() == 5.0
        assert np.isclose(Ones(5, 2).sensitivity_l2(), np.sqrt(5.0))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Ones(0, 3)


class TestPrefixSuffix:
    def test_prefix_matvec_is_cumsum(self):
        p = Prefix(5)
        v = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert np.allclose(p.matvec(v), np.cumsum(v))

    def test_prefix_dense_lower_triangular(self):
        d = Prefix(4).dense()
        assert np.array_equal(d, np.tril(np.ones((4, 4))))

    def test_prefix_transpose_is_suffix(self):
        p = Prefix(6)
        assert isinstance(p.T, Suffix)
        assert np.allclose(p.T.dense(), p.dense().T)

    def test_suffix_matvec(self):
        s = Suffix(4)
        v = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(s.matvec(v), [10.0, 9.0, 7.0, 4.0])

    def test_prefix_rmatvec_matches_dense(self):
        p = Prefix(7)
        u = np.arange(7.0)
        assert np.allclose(p.rmatvec(u), p.dense().T @ u)

    def test_sensitivity(self):
        assert Prefix(8).sensitivity() == 8.0
        assert Suffix(8).sensitivity() == 8.0


class TestHaarWavelet:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            HaarWavelet(6)

    def test_matvec_matches_dense(self):
        w = HaarWavelet(8)
        rng = np.random.default_rng(0)
        v = rng.normal(size=8)
        assert np.allclose(w.matvec(v), w.dense() @ v)

    def test_rmatvec_matches_dense(self):
        w = HaarWavelet(16)
        rng = np.random.default_rng(1)
        u = rng.normal(size=16)
        assert np.allclose(w.rmatvec(u), w.dense().T @ u)

    def test_sensitivity_is_log(self):
        w = HaarWavelet(16)
        dense_sensitivity = np.abs(w.dense()).sum(axis=0).max()
        assert np.isclose(w.sensitivity(), dense_sensitivity)
        assert np.isclose(w.sensitivity(), 1 + np.log2(16))

    def test_invertible(self):
        # The Haar transform is invertible: least-squares reconstruction is exact.
        w = HaarWavelet(8)
        rng = np.random.default_rng(2)
        x = rng.integers(0, 10, size=8).astype(float)
        y = w.matvec(x)
        recovered = np.linalg.lstsq(w.dense(), y, rcond=None)[0]
        assert np.allclose(recovered, x, atol=1e-8)


class TestDerivedOperations:
    def test_row_extraction(self):
        p = Prefix(5)
        assert np.allclose(p.row(2), [1.0, 1.0, 1.0, 0.0, 0.0])

    def test_gram_matvec(self):
        p = Prefix(4)
        gram = p.gram()
        v = np.arange(4.0)
        assert np.allclose(gram.matvec(v), p.dense().T @ p.dense() @ v)

    def test_matmul_with_vector(self):
        m = Identity(3)
        assert np.allclose(m @ np.array([1.0, 2.0, 3.0]), [1.0, 2.0, 3.0])

    def test_scalar_multiplication(self):
        m = 2.0 * Identity(3)
        assert np.allclose(m.dense(), 2.0 * np.eye(3))

    def test_num_queries_and_domain_size(self):
        m = Ones(3, 7)
        assert m.num_queries == 3
        assert m.domain_size == 7
