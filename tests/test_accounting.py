"""Tests for the pluggable privacy-accounting subsystem (repro.accounting).

Covers, in order:

* seed-compatibility — a :class:`PureDPAccountant`-backed tracker reproduces
  the original hard-coded tracker's decisions and float trajectories exactly
  (a verbatim copy of the seed algorithm is kept here as the oracle),
* the hardened root ledger (drift and exact-exhaustion, both directions),
* accountant cost rules and conversions (zCDP ⇄ (ε, δ), Gaussian σ),
* Gaussian measurements end-to-end through the kernel (calibration, L2
  sensitivity closed forms, pure-DP rejection),
* zCDP-vs-pure budget crossover on many-round MWEM,
* the odometer/filter view,
* the service layer: per-tenant accountants, converted (ε, δ) in audits and
  responses, ledger reconciliation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting import (
    ApproxDPAccountant,
    Cost,
    PrivacyOdometer,
    PureDPAccountant,
    ZCDPAccountant,
    make_accountant,
    zcdp_epsilon_for_rho_delta,
    zcdp_rho_for_epsilon_delta,
)
from repro.dataset import Attribute, Relation, Schema
from repro.matrix import (
    Identity,
    Kronecker,
    Ones,
    Prefix,
    RangeQueries,
    ReductionMatrix,
    Total,
    VStack,
)
from repro.matrix.combinators import Weighted
from repro.matrix.dense import DenseMatrix, SparseMatrix
from repro.private import (
    BudgetExceededError,
    ProtectedKernel,
    UnsupportedMechanismError,
    protect,
)
from repro.private.budget import BudgetTracker
from repro.plans import H2Plan, IdentityPlan, MwemPlan
from repro.service import PlanScheduler, QueryRequest, SessionManager
from repro.service.export import reconcile, session_report


def _relation(values: np.ndarray, name: str = "v") -> Relation:
    schema = Schema.build([Attribute(name, len(values))])
    return Relation.from_histogram(schema, values)


@pytest.fixture
def vector_relation():
    rng = np.random.default_rng(3)
    return _relation(rng.integers(0, 30, size=32).astype(np.float64))


# ---------------------------------------------------------------------------
# The seed tracker, kept verbatim as the compatibility oracle.
# ---------------------------------------------------------------------------


class _SeedTracker:
    """Verbatim re-implementation of the pre-accountant BudgetTracker."""

    def __init__(self, epsilon_total: float):
        self.epsilon_total = float(epsilon_total)
        self.nodes: dict[str, dict] = {
            "root": {"kind": "root", "parent": None, "stability": 1.0, "consumed": 0.0}
        }

    def add_derived(self, name, parent, stability):
        self.nodes[name] = {
            "kind": "derived",
            "parent": parent,
            "stability": float(stability),
            "consumed": 0.0,
        }

    def add_partition(self, name, parent):
        self.nodes[name] = {
            "kind": "partition",
            "parent": parent,
            "stability": 1.0,
            "consumed": 0.0,
        }

    def request(self, name, sigma):
        node = self.nodes[name]
        if node["kind"] == "root":
            if node["consumed"] + sigma > self.epsilon_total + 1e-12:
                return False
            node["consumed"] += sigma
            return True
        parent = self.nodes[node["parent"]]
        if parent["kind"] == "partition":
            increase = max(node["consumed"] + sigma - parent["consumed"], 0.0)
            if not self._forward(parent, increase):
                return False
            node["consumed"] += sigma
            return True
        if not self.request(node["parent"], node["stability"] * sigma):
            return False
        node["consumed"] += sigma
        return True

    def _forward(self, partition, increase):
        if increase <= 0:
            return True
        grandparent = self.nodes[partition["parent"]]
        if grandparent["kind"] == "partition":
            nested = max(partition["consumed"] + increase - grandparent["consumed"], 0.0)
            ok = self._forward(grandparent, nested)
        else:
            ok = self.request(partition["parent"], partition["stability"] * increase)
        if not ok:
            return False
        partition["consumed"] += increase
        return True


@st.composite
def lineage_scenarios(draw):
    """A random lineage tree (chains, partitions, nested partitions) plus a
    charge sequence, mirroring what kernels actually build."""
    epsilon_total = draw(st.sampled_from([0.5, 1.0, 2.5]))
    actions = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["derive", "partition", "charge"]),
                st.integers(min_value=0, max_value=30),
                st.sampled_from([1.0, 1.0, 2.0, 3.0]),
                st.floats(min_value=0.0, max_value=1.2, allow_nan=False),
            ),
            min_size=1,
            max_size=25,
        )
    )
    return epsilon_total, actions


def _run_scenario(tracker_cls_new: bool, epsilon_total, actions):
    """Replay a scenario on the new (or oracle) tracker; return the decision
    log and the final per-node consumption map."""
    if tracker_cls_new:
        tracker = BudgetTracker(epsilon_total)
        nodes = lambda: {  # noqa: E731
            name: tracker.node(name).consumed for name in tracker._nodes
        }
        chargeable_kind = lambda name: tracker.node(name).kind.value  # noqa: E731
    else:
        tracker = _SeedTracker(epsilon_total)
        nodes = lambda: {n: v["consumed"] for n, v in tracker.nodes.items()}  # noqa: E731
        chargeable_kind = lambda name: tracker.nodes[name]["kind"]  # noqa: E731

    names = ["root"]
    decisions = []
    counter = 0
    for kind, index, stability, sigma in actions:
        parent = names[index % len(names)]
        if kind == "derive":
            counter += 1
            name = f"n{counter}"
            if chargeable_kind(parent) == "partition":
                stability = 1.0  # children of partitions are 1-stable splits
            tracker.add_derived(name, parent, stability)
            names.append(name)
        elif kind == "partition":
            if chargeable_kind(parent) == "partition":
                continue  # kernels never chain two dummies directly
            counter += 1
            name = f"p{counter}"
            tracker.add_partition(name, parent)
            names.append(name)
        else:
            if chargeable_kind(parent) == "partition":
                continue
            decisions.append((parent, sigma, tracker.request(parent, sigma)))
    return decisions, nodes()


class TestPureSeedCompatibility:
    @given(lineage_scenarios())
    @settings(max_examples=250, deadline=None)
    def test_decisions_and_trajectories_match_seed(self, scenario):
        epsilon_total, actions = scenario
        new_decisions, new_nodes = _run_scenario(True, epsilon_total, actions)
        old_decisions, old_nodes = _run_scenario(False, epsilon_total, actions)
        assert new_decisions == old_decisions
        # Bit-identical float trajectories, not just approximate agreement.
        assert new_nodes == old_nodes

    def test_pure_accountant_is_the_default(self):
        tracker = BudgetTracker(1.0)
        assert tracker.accountant.name == "pure"
        assert tracker.epsilon_total == 1.0

    def test_explicit_pure_accountant_matches_default(self, vector_relation):
        by_epsilon = ProtectedKernel(vector_relation, 2.0, seed=9)
        by_accountant = ProtectedKernel(
            vector_relation, seed=9, accountant=PureDPAccountant(2.0)
        )
        for kernel in (by_epsilon, by_accountant):
            vec = kernel.transform_vectorize("root")
            kernel.measure_vector_laplace(vec, Identity(32), 0.5)
        assert by_epsilon.budget_consumed() == by_accountant.budget_consumed()
        assert by_epsilon.history() == by_accountant.history()


class TestHardenedLedger:
    def test_many_small_charges_cannot_drift_past_total(self):
        tracker = BudgetTracker(1.0)
        for _ in range(10):
            assert tracker.request("root", 0.1)
        # The naive accumulator sits at 0.9999999999999999; the ledger must
        # still refuse anything visibly above zero remaining.
        assert not tracker.request("root", 1e-6)
        assert math.fsum(c.primary for c in tracker.ledger()) <= 1.0 + 1e-9

    def test_exactly_exhausting_charge_is_accepted(self):
        # 1000 charges of 0.7 against a budget of exactly 700: the seed's
        # running accumulator drifts ~6.4e-12 above budget and spuriously
        # rejects the final charge; the fsum ledger accepts all 1000.
        tracker = BudgetTracker(700.0)
        seed = _SeedTracker(700.0)
        for i in range(1000):
            assert tracker.request("root", 0.7), f"ledger rejected charge {i}"
        seed_decisions = [seed.request("root", 0.7) for _ in range(1000)]
        assert not seed_decisions[-1]  # the regression this fixes
        assert all(seed_decisions[:-1])

    def test_over_budget_still_rejected_after_exhaustion(self):
        tracker = BudgetTracker(0.3)
        for _ in range(3):
            assert tracker.request("root", 0.1)
        assert not tracker.request("root", 0.05)

    def test_remaining_never_negative_after_exact_exhaustion(self):
        # The accepted 1000th charge leaves the naive accumulator a few ulps
        # above 700; remaining() must clamp rather than report < 0.
        tracker = BudgetTracker(700.0)
        for _ in range(1000):
            assert tracker.request("root", 0.7)
        assert tracker.remaining() == 0.0

    def test_ledger_records_every_accepted_charge(self):
        tracker = BudgetTracker(1.0)
        tracker.request("root", 0.25)
        tracker.request("root", 0.5)
        tracker.request("root", 0.5)  # rejected
        assert [c.primary for c in tracker.ledger()] == [0.25, 0.5]


class TestCostRules:
    def test_pure_costs_are_bare_epsilon(self):
        acc = PureDPAccountant(1.0)
        assert acc.laplace_cost(0.3) == Cost(0.3)
        assert acc.exponential_cost(0.3) == Cost(0.3)
        assert acc.scale(Cost(0.3), 2.0) == Cost(0.6)
        assert acc.epsilon_delta(Cost(0.7)) == (0.7, 0.0)

    def test_pure_rejects_gaussian(self):
        with pytest.raises(UnsupportedMechanismError):
            PureDPAccountant(1.0).gaussian_mechanism(1.0, 0.5, 1e-6)

    def test_approx_gaussian_analytic_sigma(self):
        acc = ApproxDPAccountant(1.0, 1e-6)
        sigma, cost = acc.gaussian_mechanism(2.0, 0.5, 1e-8)
        assert sigma == pytest.approx(2.0 * math.sqrt(2 * math.log(1.25e8)) / 0.5)
        assert cost == Cost(0.5, 1e-8)

    def test_approx_delta_budget_is_enforced(self):
        acc = ApproxDPAccountant(10.0, delta_total=1e-6, measurement_delta=4e-7)
        tracker = BudgetTracker(accountant=acc)
        _, cost = acc.gaussian_mechanism(1.0, 0.1, acc.default_delta)
        assert tracker.charge("root", cost)
        assert tracker.charge("root", cost)
        # Third measurement would push δ to 1.2e-6 > 1e-6: plenty of ε left,
        # but the δ ledger is exhausted.
        assert not tracker.charge("root", cost)

    def test_approx_group_privacy_scaling(self):
        acc = ApproxDPAccountant(10.0, 1e-6)
        scaled = acc.scale(Cost(0.5, 1e-8), 2.0)
        assert scaled.primary == pytest.approx(1.0)
        assert scaled.delta == pytest.approx(2.0 * math.exp(0.5) * 1e-8)
        # Contractive edges must not shrink δ.
        assert acc.scale(Cost(0.5, 1e-8), 0.5).delta == 1e-8

    def test_zcdp_conversion_roundtrip(self):
        rho = zcdp_rho_for_epsilon_delta(1.0, 1e-6)
        assert zcdp_epsilon_for_rho_delta(rho, 1e-6) == pytest.approx(1.0)

    def test_zcdp_costs(self):
        acc = ZCDPAccountant(epsilon=1.0, delta=1e-6)
        assert acc.laplace_cost(0.2).primary == pytest.approx(0.02)
        assert acc.exponential_cost(0.2).primary == pytest.approx(0.005)
        # Group privacy: ρ scales with the square of the stability.
        assert acc.scale(Cost(0.1), 3.0).primary == pytest.approx(0.9)

    def test_zcdp_gaussian_composition_beats_basic(self):
        # Per call the ρ-calibrated σ is within a few percent of the classic
        # analytic formula (the conversion is slightly lossy one-shot)...
        zc = ZCDPAccountant(epsilon=10.0, delta=1e-6)
        ap = ApproxDPAccountant(10.0, 1e-6)
        sigma_z, cost_z = zc.gaussian_mechanism(1.0, 0.5, 1e-6)
        sigma_a, _ = ap.gaussian_mechanism(1.0, 0.5, 1e-6)
        assert sigma_z == pytest.approx(sigma_a, rel=0.05)
        # ...but composition is where zCDP pays: 50 such measurements add up
        # to √50-ish in the converted ε, not the 50× of basic composition.
        total = Cost(0.0)
        for _ in range(50):
            total = total + cost_z
        eps_total, _ = zc.epsilon_delta(total)
        assert eps_total < 0.25 * (50 * 0.5)

    def test_make_accountant_registry(self):
        assert make_accountant(None, 1.0).name == "pure"
        assert make_accountant("pure", 1.0).name == "pure"
        assert make_accountant("approx", 1.0, delta=1e-5).delta_total == 1e-5
        zc = make_accountant("zcdp", 2.0, delta=1e-7)
        assert zc.rho_total == pytest.approx(zcdp_rho_for_epsilon_delta(2.0, 1e-7))
        passthrough = PureDPAccountant(3.0)
        assert make_accountant(passthrough, 1.0) is passthrough
        with pytest.raises(KeyError):
            make_accountant("renyi", 1.0)


class TestSensitivityL2ClosedForms:
    @pytest.mark.parametrize(
        "matrix",
        [
            Identity(9),
            Ones(4, 9),
            Total(9),
            Prefix(9),
            ReductionMatrix(np.array([0, 0, 1, 1, 1, 2, 2, 2, 2])),
            VStack([Identity(9), Prefix(9), Total(9)]),
            Weighted(Prefix(9), -2.5),
            DenseMatrix(np.arange(18, dtype=float).reshape(2, 9) - 5.0),
            SparseMatrix(np.eye(9) * 3.0),
            Kronecker([Prefix(3), Identity(3)]),
            RangeQueries(9, [(0, 4), (2, 8), (0, 8)]),
        ],
        ids=lambda m: type(m).__name__,
    )
    def test_matches_dense_column_norm(self, matrix):
        dense = matrix.dense()
        expected = float(np.sqrt(np.max(np.sum(dense * dense, axis=0))))
        assert matrix.sensitivity_l2() == pytest.approx(expected)


class TestKernelGaussian:
    def test_calibration_empirical_std(self):
        # A large identity measurement under a fixed seed: the empirical
        # noise std must match the declared scale within a few percent.
        n = 20_000
        values = np.zeros(n)
        kernel = ProtectedKernel(
            _relation(values), seed=123, accountant=ZCDPAccountant(epsilon=50.0, delta=1e-6)
        )
        vec = kernel.transform_vectorize("root")
        answers = kernel.measure_vector_gaussian(vec, Identity(n), 1.0, delta=1e-6)
        record = kernel.history()[-1]
        assert record.operator == "VectorGaussian"
        assert record.noise_scale == pytest.approx(
            1.0 / math.sqrt(2.0 * zcdp_rho_for_epsilon_delta(1.0, 1e-6))
        )
        assert float(np.std(answers)) == pytest.approx(record.noise_scale, rel=0.05)

    def test_charged_cost_is_rho_not_epsilon(self, vector_relation):
        kernel = ProtectedKernel(
            vector_relation, seed=0, accountant=ZCDPAccountant(epsilon=1.0, delta=1e-6)
        )
        vec = kernel.transform_vectorize("root")
        kernel.measure_vector_gaussian(vec, Identity(32), 0.25)
        record = kernel.history()[-1]
        assert record.cost == pytest.approx(zcdp_rho_for_epsilon_delta(0.25, 1e-6))
        assert kernel.budget_consumed() == pytest.approx(record.cost)

    def test_gaussian_rejected_under_pure_accounting(self, vector_relation):
        source = protect(vector_relation, epsilon_total=1.0, seed=0).vectorize()
        with pytest.raises(UnsupportedMechanismError):
            source.vector_gaussian(Identity(32), 0.5)

    def test_budget_exhaustion_raises(self, vector_relation):
        kernel = ProtectedKernel(
            vector_relation, seed=0, accountant=ZCDPAccountant(rho=1e-4, delta=1e-6)
        )
        vec = kernel.transform_vectorize("root")
        with pytest.raises(BudgetExceededError):
            kernel.measure_vector_gaussian(vec, Identity(32), 5.0)

    def test_laplace_still_works_under_zcdp(self, vector_relation):
        kernel = ProtectedKernel(
            vector_relation, seed=0, accountant=ZCDPAccountant(epsilon=1.0, delta=1e-6)
        )
        vec = kernel.transform_vectorize("root")
        kernel.measure_vector_laplace(vec, Identity(32), 0.1)
        assert kernel.budget_consumed() == pytest.approx(0.1**2 / 2.0)

    def test_exponential_mechanism_records_true_scale(self, vector_relation):
        kernel = ProtectedKernel(vector_relation, 1.0, seed=1)
        vec = kernel.transform_vectorize("root")
        kernel.select_exponential_mechanism(
            vec, lambda x: np.arange(4, dtype=float), 4, epsilon=0.5, score_sensitivity=2.0
        )
        record = kernel.history()[-1]
        # 2·Δu/ε, not the bare score sensitivity the seed recorded.
        assert record.noise_scale == pytest.approx(2.0 * 2.0 / 0.5)
        assert record.epsilon == 0.5


class TestMwemCrossover:
    def test_zcdp_charges_less_than_pure_on_many_rounds(self, vector_relation):
        workload = RangeQueries(32, [(i, j) for i in range(0, 32, 4) for j in range(i + 3, 32, 7)])
        plan = MwemPlan(workload, rounds=50, total_records=300.0, history_passes=2)
        delta = 1e-6

        pure_source = protect(vector_relation, epsilon_total=4.0, seed=5).vectorize()
        plan.run(pure_source, 2.0)
        pure_epsilon = pure_source.budget_consumed()
        assert pure_epsilon == pytest.approx(2.0)

        zc = ZCDPAccountant(epsilon=2.0, delta=delta)
        zc_source = protect(vector_relation, seed=5, accountant=zc).vectorize()
        plan.run(zc_source, 2.0)
        eps_reported, delta_reported = zc_source.odometer().epsilon_delta_report()
        assert delta_reported == delta
        # Same nominal per-round parameters, same mechanisms — but additive
        # ρ composition converts back to a much smaller (ε, δ) than the
        # linear ε-sum of basic composition.
        assert eps_reported < 0.5 * pure_epsilon

    def test_zcdp_identical_noise_stream_for_same_mechanisms(self, vector_relation):
        # Accounting must not perturb the noise: the same seed and the same
        # mechanism sequence yield byte-identical answers under any
        # accountant that admits them.
        workload = RangeQueries(32, [(0, 7), (8, 15), (0, 31)])
        plan = MwemPlan(workload, rounds=3, total_records=300.0, history_passes=2)
        a = protect(vector_relation, epsilon_total=9.0, seed=11).vectorize()
        b = protect(
            vector_relation, seed=11, accountant=ZCDPAccountant(epsilon=9.0, delta=1e-6)
        ).vectorize()
        ra, rb = plan.run(a, 1.0), plan.run(b, 1.0)
        assert np.array_equal(ra.x_hat, rb.x_hat)


class TestOdometer:
    def test_entries_and_filter(self, vector_relation):
        source = protect(vector_relation, epsilon_total=1.0, seed=0).vectorize()
        source.vector_laplace(Identity(32), 0.25)
        odometer = source.odometer()
        entries = odometer.entries()
        assert {e.source for e in entries} == {"root", "vector_1"}
        vec_entry = next(e for e in entries if e.source == "vector_1")
        assert vec_entry.native_spent == pytest.approx(0.25)
        assert vec_entry.epsilon_spent == pytest.approx(0.25)
        assert odometer.epsilon_delta_report() == (pytest.approx(0.25), 0.0)
        # The filter is a dry run: probing must not move any counters.
        assert odometer.can_measure("vector_1", 0.75)
        assert not odometer.can_measure("vector_1", 0.76)
        assert source.budget_consumed() == pytest.approx(0.25)
        assert odometer.headroom("vector_1") == pytest.approx(0.75, abs=1e-4)

    def test_filter_respects_parallel_composition(self, vector_relation):
        source = protect(vector_relation, epsilon_total=1.0, seed=0).vectorize()
        partition = ReductionMatrix(np.arange(32) % 2)
        left, right = source.split_by_partition(partition)
        left.vector_laplace(Identity(left.domain_size), 0.6)
        odometer = source.odometer()
        # The sibling rides under the partition max: charging 0.6 again on
        # the other child forwards nothing new to the root.
        assert odometer.can_measure(right.name, 0.6)
        # But exceeding the global budget through the max still fails.
        assert not odometer.can_measure(right.name, 1.1)

    def test_headroom_exceeds_native_budget_for_sublinear_costs(self, vector_relation):
        # A ρ budget of 1.5 admits a Laplace ε of sqrt(2·1.5) ≈ 1.73 — the
        # bracket must expand past the native budget, not stop at it.
        source = protect(
            vector_relation, seed=0, accountant=ZCDPAccountant(rho=1.5, delta=1e-6)
        ).vectorize()
        odometer = source.odometer()
        assert odometer.headroom(source.name, mechanism="laplace") == pytest.approx(
            math.sqrt(2.0 * 1.5), abs=1e-3
        )

    def test_zcdp_filter_uses_native_units(self, vector_relation):
        source = protect(
            vector_relation, seed=0, accountant=ZCDPAccountant(epsilon=1.0, delta=1e-6)
        ).vectorize()
        odometer = source.odometer()
        # ε=1.0 of Laplace costs ρ=0.5 — far beyond the ≈0.0175 ρ budget —
        # while the same budget admits a Gaussian at the full (ε=1, δ) target.
        assert not odometer.can_measure(source.name, 1.0, mechanism="laplace")
        assert odometer.can_measure(source.name, 1.0, mechanism="gaussian")


class TestServiceAccounting:
    @pytest.fixture
    def table(self):
        rng = np.random.default_rng(17)
        return _relation(rng.integers(0, 50, size=64).astype(np.float64))

    def test_pure_sessions_unchanged_by_default(self, table):
        manager = SessionManager()
        session = manager.create_session("acme", table, epsilon_total=1.0, seed=3)
        assert session.accountant.name == "pure"
        report = session.accounting_report()
        assert report["epsilon_budget"] == 1.0
        assert report["delta_budget"] == 0.0

    def test_gaussian_end_to_end_through_scheduler(self, table):
        manager = SessionManager()
        scheduler = PlanScheduler(manager)
        session = manager.create_session(
            "acme", table, epsilon_total=1.0, seed=3, accountant="zcdp", delta=1e-6
        )
        request = QueryRequest(
            session_id=session.session_id,
            plan="Hierarchical (H2)",
            epsilon=0.4,
            plan_params={"noise": "gaussian"},
            workload="prefix",
            workload_params={"n": 64},
        )
        response = scheduler.execute(request)
        assert response.accounting["accountant"] == "zcdp"
        assert response.accounting["epsilon_spent"] == pytest.approx(0.4, rel=1e-6)
        assert response.accounting["delta_spent"] == 1e-6
        # Native spend on the wire equals the kernel's ρ delta.
        assert response.epsilon_spent == pytest.approx(
            zcdp_rho_for_epsilon_delta(0.4, 1e-6)
        )
        record = session.kernel.history()[-1]
        assert record.operator == "VectorGaussian"
        # Audit export carries the converted statement and still reconciles.
        report = session_report(session)
        assert report["accounting"]["accountant"] == "zcdp"
        assert report["kernel_audit"]["epsilon_reported"] == pytest.approx(0.4, rel=1e-6)
        assert reconcile(session)["exact"]

    def test_cache_replay_spends_nothing_and_reports_current_state(self, table):
        manager = SessionManager()
        scheduler = PlanScheduler(manager)
        session = manager.create_session(
            "acme", table, epsilon_total=2.0, seed=3, accountant="approx", delta=1e-6
        )
        request = QueryRequest(
            session_id=session.session_id,
            plan="Identity",
            epsilon=0.5,
            plan_params={"noise": "gaussian"},
        )
        first = scheduler.execute(request)
        replay = scheduler.execute(request)
        assert replay.cached and replay.epsilon_spent == 0.0
        assert np.array_equal(first.x_hat, replay.x_hat)
        assert replay.accounting == session.accounting_report()
        assert reconcile(session)["exact"]

    def test_per_tenant_accountants_are_isolated(self, table):
        manager = SessionManager()
        pure = manager.create_session("a", table, epsilon_total=1.0, seed=1)
        zcdp = manager.create_session(
            "b", table, epsilon_total=1.0, seed=1, accountant="zcdp"
        )
        scheduler = PlanScheduler(manager)
        for session in (pure, zcdp):
            scheduler.execute(
                QueryRequest(session_id=session.session_id, plan="Identity", epsilon=0.1)
            )
        assert pure.budget_consumed() == pytest.approx(0.1)
        # zCDP session charged ε²/2 in ρ for the same Laplace measurement.
        assert zcdp.budget_consumed() == pytest.approx(0.1**2 / 2.0)

    def test_plans_noise_knob_via_plan_params(self, table):
        # The knob flows through the registry untouched — a pure-tenant
        # request for gaussian noise is rejected by the kernel (ledgered as
        # an errored event), not silently downgraded.
        manager = SessionManager()
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", table, epsilon_total=1.0, seed=3)
        request = QueryRequest(
            session_id=session.session_id,
            plan="Identity",
            epsilon=0.5,
            plan_params={"noise": "gaussian"},
        )
        with pytest.raises(UnsupportedMechanismError):
            scheduler.execute(request)
        assert session.events[-1].error == "UnsupportedMechanismError"
        assert session.budget_consumed() == 0.0


class TestGaussianExpectedError:
    def test_formula_matches_manual_computation(self):
        from repro.analysis import expected_workload_error, measurement_noise_variance

        n = 16
        strategy = Prefix(n)
        workload = RangeQueries(n, [(0, 3), (4, 12), (0, 15)])
        gram_inv = np.linalg.inv(strategy.dense().T @ strategy.dense())
        w = workload.dense()
        trace = float(np.trace(w @ gram_inv @ w.T))
        for noise in ("laplace", "gaussian"):
            variance = measurement_noise_variance(strategy, 0.5, noise=noise, delta=1e-6)
            assert expected_workload_error(
                workload, strategy, 0.5, noise=noise, delta=1e-6
            ) == pytest.approx(variance * trace)

    def test_gaussian_wins_on_l2_friendly_strategies(self):
        # Prefix has ||A||₁ = n but ||A||₂ = √n: at matched (ε, δ) the
        # Gaussian expected error must be far below Laplace for large n.
        from repro.analysis import expected_workload_error

        n = 256
        strategy = Prefix(n)
        workload = RangeQueries(n, [(i, i + 15) for i in range(0, n - 16, 16)])
        laplace = expected_workload_error(workload, strategy, 1.0, noise="laplace")
        gaussian = expected_workload_error(workload, strategy, 1.0, noise="gaussian", delta=1e-6)
        # Variance ratio is 2n²/ε² versus 2·ln(1.25/δ)·n/ε²: linear in n (≈18×
        # at n=256), and growing without bound as the domain widens.
        assert gaussian < laplace / 10.0
