"""Tests of the observability layer (`repro.telemetry`) and its service wiring."""

from __future__ import annotations

import json
import math
import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.dataset import Attribute, Relation, Schema
from repro.operators.inference import least_squares
from repro.private import BudgetExceededError
from repro.service import (
    ArtifactCache,
    PlanScheduler,
    QueryRequest,
    RequestFailure,
    SessionManager,
    session_report,
    telemetry_report,
)
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    ManualClock,
    MetricsRegistry,
    NOOP_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    activate,
    current_tracer,
    prometheus_text,
    spans_to_chrome_trace,
    spans_to_jsonlines,
    trace_span,
    write_chrome_trace,
)

N = 64


@pytest.fixture
def relation(small_vector):
    schema = Schema.build([Attribute("v", len(small_vector))])
    return Relation.from_histogram(schema, small_vector)


@pytest.fixture
def manager():
    return SessionManager()


def open_session(manager, relation, tenant="acme", epsilon_total=4.0, seed=0):
    return manager.create_session(tenant, relation, epsilon_total, seed=seed)


def identity_request(session, epsilon=0.1, **overrides):
    request = QueryRequest(
        session.session_id,
        plan="Identity",
        epsilon=epsilon,
        workload="prefix",
        workload_params={"n": N},
    )
    return replace(request, **overrides) if overrides else request


# ----------------------------------------------------------------------------
# Clock.
# ----------------------------------------------------------------------------
class TestManualClock:
    def test_tick_and_advance(self):
        clock = ManualClock(start=10.0, tick=0.5)
        assert clock() == 10.0
        assert clock() == 10.5
        clock.advance(4.0)
        assert clock() == 15.0


# ----------------------------------------------------------------------------
# Tracer core.
# ----------------------------------------------------------------------------
class TestTracer:
    def test_nesting_parent_child_and_durations(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("outer", plan="DAWA") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
                inner.set_attribute("rows", 3)
            assert tracer.current_span() is outer
        spans = {span.name: span for span in tracer.spans()}
        assert spans["inner"].trace_id == spans["outer"].trace_id
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].attributes == {"plan": "DAWA"}
        assert spans["inner"].attributes == {"rows": 3}
        # inner opened after outer (one tick later) and closed before it.
        assert spans["inner"].start > spans["outer"].start
        assert spans["inner"].end < spans["outer"].end
        assert spans["outer"].duration == 3.0

    def test_error_status_and_propagation(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (span,) = tracer.spans()
        assert span.status == "error"
        assert span.attributes["error.type"] == "ValueError"

    def test_sibling_traces_get_distinct_ids(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans()
        assert a.trace_id != b.trace_id

    def test_pinned_trace_id(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("root", trace_id="req-9") as root:
            assert root.trace_id == "req-9"
        assert tracer.trace("req-9")

    def test_max_spans_drops_oldest(self):
        tracer = Tracer(clock=ManualClock(tick=1.0), max_spans=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [span.name for span in tracer.spans()] == ["b", "c"]
        assert tracer.dropped == 1
        assert tracer.stats()["dropped"] == 1

    def test_threads_do_not_share_context(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        seen = {}

        def worker():
            # A span opened on the main thread must not become this thread's
            # parent: the context stack is thread-local.
            with tracer.span("child-thread") as handle:
                seen["parent"] = handle.parent_id
                seen["trace"] = handle.trace_id

        with tracer.span("main-thread") as main_span:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert seen["parent"] is None
            assert seen["trace"] != main_span.trace_id

    def test_drain_empties_buffer(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with tracer.span("a"):
            pass
        drained = tracer.drain()
        assert [span.name for span in drained] == ["a"]
        assert len(tracer) == 0


class TestActivation:
    def test_trace_span_is_noop_without_active_tracer(self):
        assert current_tracer() is NULL_TRACER
        handle = trace_span("anything", key="value")
        assert handle is NOOP_SPAN  # the shared handle: no allocation at all
        with handle as span:
            span.set_attribute("ignored", 1)
        assert NOOP_SPAN.attributes == {}

    def test_activate_scopes_and_restores(self):
        tracer = Tracer(clock=ManualClock(tick=1.0))
        with activate(tracer):
            assert current_tracer() is tracer
            with trace_span("seam"):
                pass
            inner = Tracer(clock=ManualClock(tick=1.0))
            with activate(inner):
                assert current_tracer() is inner
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER
        assert [span.name for span in tracer.spans()] == ["seam"]

    def test_null_tracer_records_nothing(self):
        assert NULL_TRACER.span("x") is NOOP_SPAN
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.stats()["enabled"] is False


# ----------------------------------------------------------------------------
# Histogram / metrics.
# ----------------------------------------------------------------------------
class TestHistogram:
    def test_bucketing_and_counts(self):
        hist = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0, 100.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 1, 1]  # last slot is the overflow bucket
        assert hist.count == 5
        assert hist.total == pytest.approx(106.6)
        assert hist.minimum == 0.5 and hist.maximum == 100.0

    def test_percentile_interpolation(self):
        hist = Histogram("lat", bounds=(10.0, 20.0))
        for value in (2.0, 4.0, 6.0, 8.0):
            hist.observe(value)
        # All mass in the first bucket [0, 10]: rank interpolates linearly.
        assert hist.percentile(50) == pytest.approx(5.0)
        assert hist.percentile(100) == pytest.approx(8.0)  # clamped to max
        assert hist.percentile(0) == pytest.approx(2.0)  # clamped to min

    def test_percentile_clamps_overflow_bucket(self):
        hist = Histogram("lat", bounds=(1.0,))
        hist.observe(5.0)
        hist.observe(7.0)
        # Overflow bucket has no upper edge; the observed max bounds it.
        assert hist.percentile(99) <= 7.0

    def test_percentile_edge_cases(self):
        hist = Histogram("lat", bounds=(1.0,))
        assert math.isnan(hist.percentile(50))
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2.0, 1.0))

    def test_snapshot_shape(self):
        hist = Histogram("lat", bounds=(1.0, 2.0))
        hist.observe(0.5)
        snap = hist.snapshot()
        assert snap["count"] == 1 and snap["min"] == snap["max"] == 0.5
        assert set(snap["buckets"]) == {"le_1", "le_2", "le_inf"}

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestMetricsRegistry:
    def test_counters_are_label_scoped_and_monotonic(self):
        registry = MetricsRegistry(clock=ManualClock(tick=1.0))
        registry.counter("requests", tenant="a").inc()
        registry.counter("requests", tenant="a").inc(2)
        registry.counter("requests", tenant="b").inc()
        snap = registry.snapshot()
        assert snap["counters"]["requests{tenant=a}"] == 3
        assert snap["counters"]["requests{tenant=b}"] == 1
        with pytest.raises(ValueError):
            registry.counter("requests", tenant="a").inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry(clock=ManualClock(tick=1.0))
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert registry.snapshot()["gauges"]["depth"] == 4

    def test_privacy_odometer_burn_rate(self):
        clock = ManualClock(start=0.0, tick=10.0)  # observations 10 s apart
        registry = MetricsRegistry(clock=clock)
        registry.record_privacy_spend("acme", "Identity", 0.1)
        registry.record_privacy_spend("acme", "Identity", 0.3)
        registry.record_privacy_spend("acme", "Dawa", 0.2)
        registry.record_privacy_spend("zeta", "Identity", 0.5, unit="rho")
        odometer = registry.privacy_odometer()
        acme = odometer["acme"]
        assert acme["unit"] == "epsilon"
        assert acme["total_spent"] == pytest.approx(0.6)
        assert acme["requests"] == 3
        # Identity saw 0.4 spent over a 10 s first-to-last window.
        assert acme["plans"]["Identity"]["burn_rate_per_second"] == pytest.approx(0.04)
        # Dawa has a single observation: no window, no rate.
        assert acme["plans"]["Dawa"]["burn_rate_per_second"] is None
        assert odometer["zeta"]["unit"] == "rho"


# ----------------------------------------------------------------------------
# Exporters.
# ----------------------------------------------------------------------------
def _sample_spans():
    # ``process`` is pinned so golden assertions don't depend on the test
    # runner's pid.
    return [
        Span(
            trace_id="trace-1",
            span_id="span-2",
            parent_id="span-1",
            name="kernel.measure.laplace",
            start=1.5,
            end=2.0,
            thread="worker-0",
            attributes={"epsilon": 0.1},
            process=1,
        ),
        Span(
            trace_id="trace-1",
            span_id="span-1",
            parent_id=None,
            name="service.request",
            start=1.0,
            end=3.0,
            thread="MainThread",
            status="ok",
            process=1,
        ),
    ]


class TestExporters:
    def test_jsonlines_golden(self):
        lines = spans_to_jsonlines(_sample_spans()).splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        # Ordered by start time, not completion order.
        assert first["span_id"] == "span-1" and second["span_id"] == "span-2"
        assert second == {
            "trace_id": "trace-1",
            "span_id": "span-2",
            "parent_id": "span-1",
            "name": "kernel.measure.laplace",
            "start": 1.5,
            "end": 2.0,
            "duration": 0.5,
            "thread": "worker-0",
            "process": 1,
            "status": "ok",
            "attributes": {"epsilon": 0.1},
        }

    def test_chrome_trace_golden(self):
        doc = spans_to_chrome_trace(_sample_spans(), process_name="svc")
        assert doc["displayTimeUnit"] == "ms"
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["args"]["name"] for e in metadata} == {"svc", "MainThread", "worker-0"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in complete}
        root = by_name["service.request"]
        child = by_name["kernel.measure.laplace"]
        # Rebased to the earliest start, in microseconds.
        assert root["ts"] == 0.0 and root["dur"] == pytest.approx(2e6)
        assert child["ts"] == pytest.approx(0.5e6) and child["dur"] == pytest.approx(0.5e6)
        assert child["tid"] != root["tid"]  # one lane per thread
        assert child["args"]["parent_id"] == "span-1"
        assert child["args"]["epsilon"] == 0.1
        assert child["cat"] == "kernel"

    def test_chrome_trace_roundtrips_to_disk(self, tmp_path):
        path = write_chrome_trace(_sample_spans(), tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 5

    def test_prometheus_golden(self):
        registry = MetricsRegistry(clock=ManualClock(tick=1.0))
        registry.counter("service_requests", tenant="acme", outcome="ok").inc(3)
        hist = registry.histogram("latency_seconds", buckets=(1.0, 2.0), tenant="acme")
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(9.0)
        text = prometheus_text(registry)
        assert '# TYPE service_requests_total counter' in text
        assert 'service_requests_total{outcome="ok",tenant="acme"} 3.0' in text
        assert 'latency_seconds_bucket{tenant="acme",le="1.0"} 1' in text
        assert 'latency_seconds_bucket{tenant="acme",le="2.0"} 2' in text
        assert 'latency_seconds_bucket{tenant="acme",le="+Inf"} 3' in text
        assert 'latency_seconds_sum{tenant="acme"} 11.0' in text
        assert 'latency_seconds_count{tenant="acme"} 3' in text
        assert text.endswith("\n")


# ----------------------------------------------------------------------------
# Service integration.
# ----------------------------------------------------------------------------
class TestSchedulerTracing:
    def test_request_trace_tree(self, manager, relation):
        session = open_session(manager, relation)
        tracer = Tracer()
        scheduler = PlanScheduler(manager, tracer=tracer)
        response = scheduler.execute(identity_request(session))
        assert response.trace_id is not None
        spans = tracer.trace(response.trace_id)
        by_name = {span.name: span for span in spans}
        root = by_name["service.request"]
        assert root.parent_id is None
        assert root.attributes["plan"] == "Identity"
        assert root.attributes["cached"] is False
        assert root.attributes["epsilon_spent"] == pytest.approx(
            response.epsilon_spent
        )
        # Every non-root span links to a parent within the same trace.
        ids = {span.span_id for span in spans}
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in ids
        assert "plan.run" in by_name
        assert by_name["kernel.measure.laplace"].attributes["epsilon"] == pytest.approx(
            0.1
        )

    def test_batch_traces_do_not_cross(self, manager, relation):
        sessions = [
            open_session(manager, relation, tenant=f"t{i}", seed=i) for i in range(3)
        ]
        tracer = Tracer()
        scheduler = PlanScheduler(manager, tracer=tracer, max_workers=4)
        requests = [
            identity_request(session, reuse=False)
            for session in sessions
            for _ in range(3)
        ]
        responses = scheduler.execute_batch(requests)
        trace_ids = [response.trace_id for response in responses]
        assert len(set(trace_ids)) == len(trace_ids)  # one trace per request
        traces = tracer.traces()
        for response in responses:
            spans = traces[response.trace_id]
            roots = [span for span in spans if span.parent_id is None]
            assert len(roots) == 1 and roots[0].name == "service.request"
            assert roots[0].attributes["request_id"] == response.request_id
            ids = {span.span_id for span in spans}
            for span in spans:
                if span.parent_id is not None:
                    assert span.parent_id in ids  # parent lives in SAME trace

    def test_cached_replay_gets_own_trace(self, manager, relation):
        session = open_session(manager, relation)
        tracer = Tracer()
        scheduler = PlanScheduler(manager, tracer=tracer)
        first = scheduler.execute(identity_request(session))
        second = scheduler.execute(identity_request(session))
        assert second.cached and second.trace_id != first.trace_id
        (root,) = tracer.trace(second.trace_id)
        assert root.attributes["cached"] is True

    def test_disabled_tracing_records_nothing(self, manager, relation):
        session = open_session(manager, relation)
        scheduler = PlanScheduler(manager)
        assert scheduler.tracer is NULL_TRACER
        response = scheduler.execute(identity_request(session))
        assert response.trace_id is None
        assert session.events[-1].trace_id is None
        assert len(scheduler.tracer) == 0

    def test_solver_span_reports_gram_cache_hit(self):
        rng = np.random.default_rng(0)
        queries = np.eye(8)
        answers = rng.normal(size=8)
        cache = ArtifactCache()
        tracer = Tracer()
        with activate(tracer):
            least_squares(queries, answers, method="normal", gram_cache=cache, gram_key="k")
            least_squares(queries, answers, method="normal", gram_cache=cache, gram_key="k")
        solves = [s for s in tracer.spans() if s.name == "solve.least_squares"]
        assert [span.attributes["gram_cache_hit"] for span in solves] == [False, True]


class TestEventTiming:
    def test_events_carry_durations(self, manager, relation):
        session = open_session(manager, relation)
        scheduler = PlanScheduler(manager)
        scheduler.execute(identity_request(session))
        scheduler.execute(identity_request(session))  # cache hit is timed too
        fresh, cached = session.events
        assert fresh.duration_seconds > 0
        assert fresh.queue_wait_seconds >= 0
        assert cached.cached and cached.duration_seconds > 0

    def test_session_report_telemetry_section(self, manager, relation):
        session = open_session(manager, relation)
        scheduler = PlanScheduler(manager)
        for _ in range(3):
            scheduler.execute(identity_request(session, reuse=False))
        telemetry = session_report(session)["telemetry"]
        assert telemetry["num_timed"] == 3
        assert telemetry["total_seconds"] >= telemetry["max_seconds"] > 0
        assert telemetry["p50_seconds"] <= telemetry["p95_seconds"] <= telemetry["max_seconds"]
        assert telemetry["total_queue_wait_seconds"] >= 0

    def test_empty_session_report_telemetry(self, manager, relation):
        session = open_session(manager, relation)
        telemetry = session_report(session)["telemetry"]
        assert telemetry["num_timed"] == 0 and telemetry["total_seconds"] == 0.0


class TestStructuredFailures:
    def test_batch_failure_keeps_type_and_attaches_context(self, manager, relation):
        session = open_session(manager, relation, epsilon_total=0.25)
        tracer = Tracer()
        scheduler = PlanScheduler(manager, tracer=tracer)
        requests = [
            identity_request(session, epsilon=0.2, reuse=False),
            identity_request(session, epsilon=0.2, reuse=False),  # busts budget
        ]
        results = scheduler.execute_batch(requests, return_exceptions=True)
        assert not isinstance(results[0], Exception)
        error = results[1]
        assert isinstance(error, BudgetExceededError)  # original type survives
        failure = RequestFailure.of(error)
        assert failure is not None
        assert failure.batch_index == 1
        assert failure.error_type == "BudgetExceededError"
        assert failure.plan == "Identity"
        assert failure.session_id == session.session_id
        assert failure.trace_id is not None
        # The failed request's root span is marked errored.
        root = [
            span
            for span in tracer.trace(failure.trace_id)
            if span.name == "service.request"
        ][0]
        assert root.status == "error"

    def test_unknown_session_failure_is_synthesised(self, manager, relation):
        open_session(manager, relation)
        scheduler = PlanScheduler(manager)
        request = QueryRequest("nope", plan="Identity", epsilon=0.1, request_id="r1")
        (error,) = scheduler.execute_batch([request], return_exceptions=True)
        assert isinstance(error, KeyError)
        failure = RequestFailure.of(error)
        assert failure.batch_index == 0 and failure.session_id == "nope"

    def test_rejection_attaches_failure(self, manager, relation):
        session = open_session(manager, relation)
        scheduler = PlanScheduler(manager)
        bad = identity_request(session, workload_params={"n": N // 2})
        with pytest.raises(ValueError) as excinfo:
            scheduler.execute(bad)
        failure = RequestFailure.of(excinfo.value)
        assert failure.error_type == "ValueError" and failure.epsilon_spent == 0.0


class TestTelemetryReport:
    def test_report_structure_and_metrics(self, manager, relation):
        session = open_session(manager, relation)
        scheduler = PlanScheduler(manager, tracer=Tracer())
        scheduler.execute(identity_request(session))
        scheduler.execute(identity_request(session))  # measurement-cache hit
        report = telemetry_report(scheduler)
        assert set(report) == {"metrics", "privacy_odometer", "caches", "tracer"}
        counters = report["metrics"]["counters"]
        assert counters["service_requests{outcome=ok,plan=Identity,tenant=acme}"] == 1
        assert counters["service_requests{outcome=cached,plan=Identity,tenant=acme}"] == 1
        assert counters["cache_hits{cache=measurement}"] == 1
        latency = report["metrics"]["histograms"][
            "service_request_latency_seconds{tenant=acme}"
        ]
        assert latency["count"] == 2 and latency["p95"] > 0
        odometer = report["privacy_odometer"]["acme"]
        assert odometer["unit"] == "epsilon"
        assert odometer["total_spent"] == pytest.approx(0.1)
        assert odometer["requests"] == 2  # the budget-free replay ticks too
        assert report["caches"]["measurement"]["hits"] == 1
        assert report["tracer"]["enabled"] is True
        assert report["tracer"]["num_traces"] == 2

    def test_zcdp_session_reports_rho(self, manager, relation):
        session = manager.create_session(
            "zeta", relation, epsilon_total=1.0, seed=0, accountant="zcdp"
        )
        scheduler = PlanScheduler(manager)
        scheduler.execute(identity_request(session))
        odometer = telemetry_report(scheduler)["privacy_odometer"]["zeta"]
        assert odometer["unit"] == "rho"

    def test_report_is_json_serialisable(self, manager, relation):
        session = open_session(manager, relation)
        scheduler = PlanScheduler(manager, tracer=Tracer())
        scheduler.execute(identity_request(session))
        json.dumps(telemetry_report(scheduler), default=float)
