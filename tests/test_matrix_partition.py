"""Unit tests for partition (reduction/expansion) matrices."""

import numpy as np
import pytest

from repro.matrix import Prefix, RangeQueries, ReductionMatrix


class TestReductionMatrix:
    def test_matvec_sums_groups(self):
        p = ReductionMatrix(np.array([0, 0, 1, 1, 2]))
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert np.allclose(p.matvec(x), [3.0, 7.0, 5.0])

    def test_dense_structure(self):
        p = ReductionMatrix(np.array([0, 1, 0]))
        expected = np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        assert np.array_equal(p.dense(), expected)

    def test_group_relabelling_preserves_first_appearance(self):
        p = ReductionMatrix(np.array([5, 5, 2, 7, 2]))
        assert np.array_equal(p.groups, [0, 0, 1, 2, 1])

    def test_sensitivity_is_one(self):
        p = ReductionMatrix(np.array([0, 1, 1, 2, 0]))
        assert p.sensitivity() == 1.0

    def test_pseudo_inverse_matches_numpy(self):
        p = ReductionMatrix(np.array([0, 0, 1, 2, 1, 2, 0]))
        assert np.allclose(p.pseudo_inverse().dense(), np.linalg.pinv(p.dense()))

    def test_expand_vector_spreads_uniformly(self):
        p = ReductionMatrix(np.array([0, 0, 1]))
        expanded = p.expand_vector(np.array([4.0, 9.0]))
        assert np.allclose(expanded, [2.0, 2.0, 9.0])

    def test_reduce_then_expand_preserves_group_totals(self):
        rng = np.random.default_rng(0)
        groups = rng.integers(0, 5, size=30)
        p = ReductionMatrix(groups)
        x = rng.random(30)
        expanded = p.expand_vector(p.reduce_vector(x))
        assert np.allclose(p.reduce_vector(expanded), p.reduce_vector(x))

    def test_split_indices_partition_domain(self):
        p = ReductionMatrix(np.array([1, 0, 1, 2, 0]))
        indices = p.split_indices()
        combined = np.sort(np.concatenate(indices))
        assert np.array_equal(combined, np.arange(5))
        for g, idx in enumerate(indices):
            assert np.all(p.groups[idx] == g)

    def test_identity_and_single_group_constructors(self):
        assert ReductionMatrix.identity(4).num_groups == 4
        assert ReductionMatrix.single_group(4).num_groups == 1

    def test_from_group_list(self):
        p = ReductionMatrix.from_group_list(5, [np.array([0, 2]), np.array([1, 3, 4])])
        assert p.num_groups == 2
        assert np.array_equal(p.groups, [0, 1, 0, 1, 1])

    def test_from_group_list_rejects_overlap_and_gap(self):
        with pytest.raises(ValueError):
            ReductionMatrix.from_group_list(4, [np.array([0, 1]), np.array([1, 2, 3])])
        with pytest.raises(ValueError):
            ReductionMatrix.from_group_list(4, [np.array([0, 1])])

    def test_empty_assignment_rejected(self):
        with pytest.raises(ValueError):
            ReductionMatrix(np.array([]))


class TestWorkloadReductionAlgebra:
    def test_reduce_workload_lossless_when_columns_identical(self):
        # Workload that does not distinguish cells {0,1} or cells {2,3}.
        workload = RangeQueries(4, [(0, 1), (2, 3), (0, 3)])
        partition = ReductionMatrix(np.array([0, 0, 1, 1]))
        reduced_workload = partition.reduce_workload(workload)
        rng = np.random.default_rng(1)
        x = rng.random(4)
        x_reduced = partition.reduce_vector(x)
        assert np.allclose(workload.matvec(x), reduced_workload.matvec(x_reduced))

    def test_expand_workload_round_trip(self):
        workload = Prefix(4)
        partition = ReductionMatrix(np.array([0, 0, 1, 1]))
        reduced = partition.reduce_workload(workload)
        expanded = partition.expand_workload(reduced)
        # W P+ P averages duplicate columns; applying to a group-constant
        # vector gives the original answers.
        x_constant = np.array([2.0, 2.0, 5.0, 5.0])
        assert np.allclose(expanded.matvec(x_constant), workload.matvec(x_constant))

    def test_expansion_rmatvec_matches_dense(self):
        partition = ReductionMatrix(np.array([0, 1, 1, 2, 0]))
        expansion = partition.pseudo_inverse()
        rng = np.random.default_rng(2)
        u = rng.normal(size=5)
        assert np.allclose(expansion.rmatvec(u), expansion.dense().T @ u)

    def test_expansion_square_matches_dense(self):
        partition = ReductionMatrix(np.array([0, 1, 1, 2, 0]))
        expansion = partition.pseudo_inverse()
        sq = expansion.square()
        v = np.array([1.0, 2.0, 3.0])
        assert np.allclose(sq.matvec(v), (expansion.dense() ** 2) @ v)
