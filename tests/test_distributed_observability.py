"""Distributed observability: trace propagation, metrics adoption, flight
recorder, SLO burn-rate engine.

The invariants of the observability layer across the execution core:

* **trace parity** — the same request produces *structurally identical* span
  trees (names, parentage, ε attributes) on the inline, thread and process
  backends; spans recorded inside worker processes are adopted into the live
  trace with fresh ids, correct re-parenting and their worker pid preserved;
* **metrics adoption** — worker-side registry deltas merge losslessly:
  counters add, histogram bucket vectors add, the merged registry equals the
  single-process registry that observed everything itself;
* **retry linking** — every attempt of a retried request carries the same
  trace id plus its own ``attempt`` attribute;
* **flight recorder** — request failures, circuit-breaker opens and worker
  deaths each freeze a postmortem bundle (spans + outcomes + metrics +
  breaker/admission state), optionally written to disk;
* **SLO engine** — multi-window burn rates over the registry are exact under
  a manual clock, and only fire when the short *and* long windows burn.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.dataset import Attribute, Relation, Schema
from repro.durability import FaultInjector, InjectedFault, WorkerDeath
from repro.service import (
    CircuitBreaker,
    PlanScheduler,
    ProcessExecutor,
    QueryRequest,
    SessionManager,
    ShardRouter,
    slo_report,
)
from repro.telemetry import (
    BurnWindow,
    FlightRecorder,
    ManualClock,
    MetricsRegistry,
    SloEngine,
    SloSpec,
    Span,
    TraceContext,
    Tracer,
    activate,
    current_context,
    prometheus_text,
    spans_to_chrome_trace,
)

N = 64


@pytest.fixture
def relation():
    rng = np.random.default_rng(7)
    schema = Schema.build([Attribute("v", N)])
    return Relation.from_histogram(schema, rng.integers(0, 50, size=N).astype(float))


@pytest.fixture(scope="module")
def process_executor():
    """One process pool for the whole module — worker start-up is the cost."""
    executor = ProcessExecutor(max_workers=2)
    yield executor
    executor.shutdown()


def _dawa_request(session_id: str) -> QueryRequest:
    return QueryRequest(
        session_id,
        plan="DAWA",
        epsilon=0.5,
        workload="prefix",
        workload_params={"n": N},
    )


def _traced_run(relation, executor, request_fn=_dawa_request):
    manager = SessionManager()
    tracer = Tracer()
    scheduler = PlanScheduler(manager, tracer=tracer, executor=executor)
    session = manager.create_session(
        "acme", relation, 10.0, seed=7, session_id="acme-s1"
    )
    response = scheduler.execute(request_fn(session.session_id))
    if not isinstance(executor, ProcessExecutor):
        scheduler.shutdown()
    return response, tracer, scheduler


def _shape(spans):
    """Structural digest of a span tree: names, parentage, ε attributes."""
    children: dict[str | None, list] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    def walk(parent_id):
        return tuple(
            sorted(
                (
                    span.name,
                    span.status,
                    span.attributes.get("epsilon"),
                    walk(span.span_id),
                )
                for span in children.get(parent_id, [])
            )
        )

    return walk(None)


# ----------------------------------------------------------------------------
# Tentpole 1: cross-backend trace propagation.
# ----------------------------------------------------------------------------
class TestTraceParity:
    def test_span_trees_structurally_identical_across_backends(
        self, relation, process_executor
    ):
        _, inline_tracer, _ = _traced_run(relation, "inline")
        _, thread_tracer, _ = _traced_run(relation, "thread")
        _, process_tracer, _ = _traced_run(relation, process_executor)
        inline_shape = _shape(inline_tracer.spans())
        assert _shape(thread_tracer.spans()) == inline_shape
        assert _shape(process_tracer.spans()) == inline_shape
        # The tree is non-trivial: a real DAWA trace with kernel measurements.
        names = {span.name for span in inline_tracer.spans()}
        assert "service.request" in names
        assert "plan.run" in names
        assert "executor.worker" in names
        assert any(name.startswith("kernel.measure") for name in names)

    def test_worker_spans_adopted_into_one_trace(self, relation, process_executor):
        response, tracer, _ = _traced_run(relation, process_executor)
        spans = tracer.trace(response.trace_id)
        # Everything — driver stages and worker kernel spans — shares the
        # request's single trace id, with unique span ids.
        assert {span.trace_id for span in spans} == {response.trace_id}
        ids = [span.span_id for span in spans]
        assert len(ids) == len(set(ids))
        by_id = {span.span_id: span for span in spans}
        worker = [span for span in spans if span.name == "executor.worker"]
        assert len(worker) == 1
        # The worker root hangs under the driver's plan.run span, and the
        # worker spans keep the worker process pid (different from ours).
        assert by_id[worker[0].parent_id].name == "plan.run"
        import os

        assert worker[0].process != os.getpid()
        assert worker[0].attributes["backend"] == "process"
        kernel_spans = [s for s in spans if s.name.startswith("kernel.measure")]
        assert kernel_spans
        assert all(s.process == worker[0].process for s in kernel_spans)

    def test_trace_context_capture(self):
        tracer = Tracer()
        assert current_context(tracer) is None  # no open span
        with activate(tracer), tracer.span("outer") as outer:
            context = current_context()
            assert context == TraceContext(
                trace_id=outer.trace_id, parent_span_id=outer.span_id
            )
        assert pickle.loads(pickle.dumps(context)) == context

    def test_adopt_reidentifies_and_reparents(self):
        remote = Tracer()
        with activate(remote):
            with remote.span("executor.worker"):
                with remote.span("kernel.measure.laplace", epsilon=0.1):
                    pass
        live = Tracer()
        with activate(live), live.span("plan.run") as parent:
            adopted = live.adopt(
                remote.spans(), trace_id=parent.trace_id, parent_id=parent.span_id
            )
        assert len(adopted) == 2
        by_name = {span.name: span for span in adopted}
        root = by_name["executor.worker"]
        child = by_name["kernel.measure.laplace"]
        assert root.trace_id == child.trace_id == parent.trace_id
        assert root.parent_id == parent.span_id
        assert child.parent_id == root.span_id
        # Fresh ids from the live tracer's sequence — no collisions with the
        # remote tracer's own span-1/span-2.
        assert {span.span_id for span in live.spans()} >= {
            root.span_id,
            child.span_id,
        }
        assert child.attributes == {"epsilon": 0.1}

    def test_retry_attempts_share_one_trace(self, relation):
        manager = SessionManager()
        tracer = Tracer()
        faults = FaultInjector()
        scheduler = PlanScheduler(manager, tracer=tracer, executor="inline")
        session = manager.create_session("acme", relation, 10.0, seed=7)
        session.kernel.fault_injector = faults
        faults.arm("kernel.before_charge", times=1, transient=True)
        response = scheduler.execute_with_retry(
            QueryRequest(session.session_id, plan="Identity", epsilon=0.1)
        )
        assert response.x_hat is not None
        roots = [s for s in tracer.spans() if s.name == "service.request"]
        assert len(roots) == 2
        assert roots[0].trace_id == roots[1].trace_id == response.trace_id
        assert {s.attributes["attempt"] for s in roots} == {1, 2}
        failed = next(s for s in roots if s.attributes["attempt"] == 1)
        assert failed.status == "error"

    def test_migration_is_traced(self, relation):
        router = ShardRouter(num_shards=2)
        tracer = Tracer()
        scheduler = PlanScheduler(router, tracer=tracer, executor="inline")
        session = router.create_session("acme", relation, 10.0, seed=7)
        scheduler.execute(
            QueryRequest(session.session_id, plan="Identity", epsilon=0.1)
        )
        target = next(
            shard.shard_id
            for shard in router.shards
            if shard.shard_id != session.shard_id
        )
        scheduler.migrate_session(session.session_id, target)
        spans = {span.name: span for span in tracer.spans()}
        migrate = spans["service.migrate"]
        for phase in ("shard.drain", "shard.snapshot", "shard.restore"):
            assert spans[phase].parent_id == migrate.span_id
            assert spans[phase].trace_id == migrate.trace_id


# ----------------------------------------------------------------------------
# Tentpole 2: worker metrics adoption.
# ----------------------------------------------------------------------------
class TestMetricsAdoption:
    def test_worker_counters_reach_live_registry(self, relation, process_executor):
        response, _, scheduler = _traced_run(relation, process_executor)
        assert response.x_hat is not None
        snapshot = scheduler.metrics.snapshot()
        assert snapshot["counters"]["worker_plan_runs{outcome=ok,plan=DAWA}"] == 1
        worker_hist = snapshot["histograms"]["worker_plan_seconds{plan=DAWA}"]
        assert worker_hist["count"] == 1
        # The worker's artifact-cache counters came home too (its private
        # registry was bound to the worker cache for the job).
        assert any(key.startswith("cache_") for key in snapshot["counters"])

    def test_merge_equals_single_registry(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(0.05, size=300)
        single = MetricsRegistry()
        merged = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(3)]
        for i, value in enumerate(values):
            single.histogram("latency", tenant="acme").observe(value)
            single.counter("requests", tenant="acme").inc()
            shards[i % 3].histogram("latency", tenant="acme").observe(value)
            shards[i % 3].counter("requests", tenant="acme").inc()
        for shard in shards:
            merged.merge_state(shard.export_state())
        one = single.histogram("latency", tenant="acme")
        two = merged.histogram("latency", tenant="acme")
        assert one.counts == two.counts
        assert one.count == two.count
        assert one.total == pytest.approx(two.total)
        assert one.minimum == two.minimum and one.maximum == two.maximum
        assert (
            single.counter("requests", tenant="acme").value
            == merged.counter("requests", tenant="acme").value
        )

    def test_export_state_roundtrips_and_pickles(self):
        registry = MetricsRegistry(clock=ManualClock(start=5.0, tick=1.0))
        registry.counter("c", a="1").inc(3)
        registry.gauge("g").set(7.5)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        registry.record_privacy_spend("acme", "DAWA", 0.25)
        state = pickle.loads(pickle.dumps(registry.export_state()))
        clone = MetricsRegistry()
        clone.merge_state(state)
        assert clone.snapshot()["counters"] == registry.snapshot()["counters"]
        assert clone.snapshot()["histograms"] == registry.snapshot()["histograms"]
        odometer = clone.privacy_odometer()["acme"]
        assert odometer["total_spent"] == 0.25
        assert odometer["plans"]["DAWA"]["requests"] == 1

    def test_merge_rejects_mismatched_buckets(self):
        left = MetricsRegistry()
        left.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        right = MetricsRegistry()
        right.histogram("h", buckets=(5.0, 6.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            right.merge_state(left.export_state())

    def test_merge_accumulates_spend_window(self):
        early = MetricsRegistry(clock=ManualClock(start=10.0))
        early.record_privacy_spend("acme", "DAWA", 0.1)
        late = MetricsRegistry(clock=ManualClock(start=50.0))
        late.record_privacy_spend("acme", "DAWA", 0.3)
        merged = MetricsRegistry()
        merged.merge_state(early.export_state())
        merged.merge_state(late.export_state())
        entry = merged._spend[("acme", "DAWA")]
        assert entry.spent == pytest.approx(0.4)
        assert entry.requests == 2
        assert entry.first_time == 10.0 and entry.last_time == 50.0


# ----------------------------------------------------------------------------
# Tentpole 3: the flight recorder.
# ----------------------------------------------------------------------------
class TestFlightRecorder:
    def _scheduler(self, relation, recorder, breaker=None):
        manager = SessionManager()
        tracer = Tracer()
        scheduler = PlanScheduler(
            manager,
            tracer=tracer,
            executor="inline",
            flight_recorder=recorder,
            breaker=breaker,
        )
        session = manager.create_session("acme", relation, 10.0, seed=7)
        return scheduler, session

    def test_ring_buffers_are_bounded(self):
        recorder = FlightRecorder(max_spans=4, max_outcomes=2)
        for i in range(10):
            recorder.record_span(
                Span("t", f"s{i}", None, "x", float(i), float(i), "main", process=1)
            )
            recorder.record_outcome({"request_id": i})
        assert len(recorder.spans()) == 4
        assert [o["request_id"] for o in recorder.outcomes()] == [8, 9]

    def test_request_failure_dumps_bundle(self, relation):
        recorder = FlightRecorder()
        scheduler, session = self._scheduler(relation, recorder)
        faults = FaultInjector()
        session.kernel.fault_injector = faults
        faults.arm("kernel.before_charge", times=1, transient=False)
        with pytest.raises(InjectedFault):
            scheduler.execute(
                QueryRequest(session.session_id, plan="Identity", epsilon=0.1)
            )
        assert len(recorder.bundles) == 1
        bundle = recorder.bundles[-1]
        assert bundle["reason"] == "request_failure"
        assert bundle["context"]["outcome"] == "error"
        assert bundle["outcomes"][-1]["outcome"] == "error"
        # The failed request's inner spans are in the bundle (the tracer
        # listener feeds the ring as each span finishes; the root span is
        # still open at dump time), and the metrics snapshot rode along.
        assert any(s["name"] == "plan.run" for s in bundle["spans"])
        assert any(s["status"] == "error" for s in bundle["spans"])
        assert "service_requests{outcome=error,plan=Identity,tenant=acme}" in (
            bundle["metrics"]["counters"]
        )
        assert bundle["chrome_trace"]["traceEvents"]

    def test_breaker_open_dumps_bundle(self, relation):
        recorder = FlightRecorder()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=1000.0)
        scheduler, session = self._scheduler(relation, recorder, breaker=breaker)
        faults = FaultInjector()
        session.kernel.fault_injector = faults
        faults.arm("kernel.before_charge", times=1, transient=False)
        with pytest.raises(InjectedFault):
            scheduler.execute(
                QueryRequest(session.session_id, plan="Identity", epsilon=0.1)
            )
        reasons = [bundle["reason"] for bundle in recorder.bundles]
        assert "breaker_open" in reasons
        opened = next(b for b in recorder.bundles if b["reason"] == "breaker_open")
        assert opened["state"]["breaker"]["Identity"]["open"] is True

    def test_worker_death_dumps_bundle(self, relation):
        recorder = FlightRecorder()
        scheduler, session = self._scheduler(relation, recorder)
        faults = FaultInjector()
        scheduler.fault_injector = faults
        faults.arm("scheduler.worker", times=1, exception=WorkerDeath("killed"))
        [outcome] = scheduler.execute_batch(
            [QueryRequest(session.session_id, plan="Identity", epsilon=0.1)],
            return_exceptions=True,
        )
        assert isinstance(outcome, WorkerDeath)
        assert [b["reason"] for b in recorder.bundles] == ["worker_death"]

    def test_dump_writes_postmortem_directory(self, relation, tmp_path):
        recorder = FlightRecorder(directory=tmp_path)
        scheduler, session = self._scheduler(relation, recorder)
        scheduler.execute(
            QueryRequest(session.session_id, plan="Identity", epsilon=0.1)
        )
        bundle = scheduler._postmortem("operator_requested", note="manual")
        target = tmp_path / "postmortem-0001-operator_requested"
        assert bundle["path"] == str(target)
        spans = [
            json.loads(line)
            for line in (target / "spans.jsonl").read_text().splitlines()
        ]
        assert any(span["name"] == "service.request" for span in spans)
        trace_doc = json.loads((target / "trace.json").read_text())
        assert trace_doc["traceEvents"]
        metrics = json.loads((target / "metrics.json").read_text())
        assert "service_requests{outcome=ok,plan=Identity,tenant=acme}" in (
            metrics["counters"]
        )
        state = json.loads((target / "state.json").read_text())
        assert state["reason"] == "operator_requested"
        assert state["context"] == {"note": "manual"}


# ----------------------------------------------------------------------------
# Tentpole 4: the SLO engine.
# ----------------------------------------------------------------------------
class TestSloEngine:
    def _engine(self, specs):
        clock = ManualClock()
        registry = MetricsRegistry(clock=clock)
        engine = SloEngine(
            registry,
            specs=specs,
            windows=(BurnWindow(short_seconds=10.0, long_seconds=60.0, factor=2.0),),
            clock=clock,
        )
        return clock, registry, engine

    def test_error_rate_burn_and_alert(self):
        clock, registry, engine = self._engine(
            [SloSpec(name="avail", kind="error_rate", target=0.9)]
        )
        clock.advance(60.0)
        for _ in range(5):
            registry.counter(
                "service_requests", tenant="acme", plan="DAWA", outcome="ok"
            ).inc()
        for _ in range(5):
            registry.counter(
                "service_requests", tenant="acme", plan="DAWA", outcome="error"
            ).inc()
        [report] = engine.evaluate()
        # 50% bad against a 10% budget: burning 5× the sustainable rate in
        # both windows (they share the t=0 baseline) — over the 2× factor.
        assert report["sli"] == pytest.approx(0.5)
        assert report["rules"][0]["short_burn_rate"] == pytest.approx(5.0)
        assert report["rules"][0]["long_burn_rate"] == pytest.approx(5.0)
        assert report["alerting"] is True
        # Published back into the registry for the Prometheus exporter.
        text = prometheus_text(registry)
        assert 'slo_alerting{slo="avail"} 1.0' in text
        assert 'slo_burn_rate{slo="avail",window="10s"} 5.0' in text

    def test_latency_slo_counts_threshold_buckets(self):
        clock, registry, engine = self._engine(
            [
                SloSpec(
                    name="lat", kind="latency", target=0.9, threshold_seconds=0.1
                )
            ]
        )
        clock.advance(60.0)
        for _ in range(8):
            registry.histogram(
                "service_request_latency_seconds", tenant="acme"
            ).observe(0.01)
        for _ in range(2):
            registry.histogram(
                "service_request_latency_seconds", tenant="acme"
            ).observe(5.0)
        [report] = engine.evaluate()
        assert report["sli"] == pytest.approx(0.8)
        assert report["rules"][0]["short_burn_rate"] == pytest.approx(2.0)
        assert report["alerting"] is True

    def test_privacy_burn_needs_both_windows(self):
        clock, registry, engine = self._engine(
            [
                SloSpec(
                    name="acme-burn",
                    kind="privacy_burn",
                    tenant="acme",
                    plan="DAWA",
                    budget=1.0,
                    horizon_seconds=100.0,
                )
            ]
        )
        clock.advance(60.0)
        registry.record_privacy_spend("acme", "DAWA", 0.5)
        engine.sample()
        # A sudden burst: 0.5ε in 10 seconds is 5× the sustainable rate in
        # the short window, but the long window has only seen 1ε over 70s —
        # 1.43×, under the factor, so the alert stays quiet.
        clock.advance(10.0)
        registry.record_privacy_spend("acme", "DAWA", 0.5)
        [report] = engine.evaluate()
        rule = report["rules"][0]
        assert rule["short_burn_rate"] == pytest.approx(5.0)
        assert rule["long_burn_rate"] == pytest.approx(1.0 / 0.7, rel=1e-3)
        assert report["alerting"] is False
        assert report["sli"] == pytest.approx(0.0)  # budget fully spent

    def test_quiet_service_does_not_alert(self):
        clock, registry, engine = self._engine(
            [SloSpec(name="avail", kind="error_rate", target=0.99)]
        )
        clock.advance(30.0)
        registry.counter(
            "service_requests", tenant="acme", plan="Identity", outcome="ok"
        ).inc(100)
        [report] = engine.evaluate()
        assert report["sli"] == 1.0
        assert report["alerting"] is False
        assert report["rules"][0]["short_burn_rate"] == 0.0

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SloSpec(name="x", kind="throughput")
        with pytest.raises(ValueError, match="threshold_seconds"):
            SloSpec(name="x", kind="latency")
        with pytest.raises(ValueError, match="budget"):
            SloSpec(name="x", kind="privacy_burn")

    def test_slo_report_over_live_scheduler(self, relation):
        manager = SessionManager()
        scheduler = PlanScheduler(manager, executor="inline")
        session = manager.create_session("acme", relation, 10.0, seed=7)
        for _ in range(3):
            scheduler.execute(
                QueryRequest(session.session_id, plan="Identity", epsilon=0.1)
            )
        report = slo_report(scheduler)
        assert {r["name"] for r in report["results"]} == {
            "latency-p99-1s",
            "availability",
        }
        availability = next(
            r for r in report["results"] if r["name"] == "availability"
        )
        assert availability["sli"] == 1.0
        assert availability["alerting"] is False
        scheduler.shutdown()


# ----------------------------------------------------------------------------
# Satellites: exporter escaping and per-process Chrome lanes.
# ----------------------------------------------------------------------------
class TestExporterSatellites:
    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("requests", tenant='ac"me\\corp\nltd').inc()
        text = prometheus_text(registry)
        assert 'tenant="ac\\"me\\\\corp\\nltd"' in text
        # Exactly one physical exposition line per series — the newline in
        # the label value must not split the line.
        body = [line for line in text.splitlines() if not line.startswith("#")]
        assert body == ['requests_total{tenant="ac\\"me\\\\corp\\nltd"} 1.0']

    def test_chrome_trace_gives_each_process_a_lane(self):
        spans = [
            Span("t1", "s1", None, "service.request", 0.0, 3.0, "MainThread", process=100),
            Span("t1", "s2", "s1", "plan.run", 0.5, 2.5, "MainThread", process=100),
            Span("t1", "s3", "s2", "executor.worker", 1.0, 2.0, "MainThread", process=200),
        ]
        doc = spans_to_chrome_trace(spans, process_name="svc")
        complete = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert complete["service.request"]["pid"] == 100
        assert complete["executor.worker"]["pid"] == 200
        process_meta = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert process_meta == {100: "svc", 200: "svc/worker-200"}

    def test_process_backend_trace_has_worker_lane(self, relation, process_executor):
        response, tracer, _ = _traced_run(relation, process_executor)
        doc = spans_to_chrome_trace(tracer.trace(response.trace_id))
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(pids) == 2  # driver + one worker lane
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert sum("worker-" in name for name in names) == 1


class TestOrderIndependentSpend:
    """Per-request spend must not depend on batch interleaving.

    ``execute_batch`` drives requests concurrently on the thread and process
    backends but strictly in order on the inline backend, so the order in
    which a batch's charges land on the session ledger differs across
    backends.  The per-request spend is therefore summed from the request's
    own bracketed ledger slice (``fsum``), never as a difference of two
    running totals — the latter's last ulp shifts with whatever the
    accumulator held when the bracket opened.
    """

    def test_charged_between_ignores_prior_ledger_content(self):
        from repro.private.budget import BudgetTracker

        for prelude in ([0.1], [0.1, 0.05], [0.05, 0.1], []):
            tracker = BudgetTracker(epsilon_total=10.0)
            for epsilon in prelude:
                assert tracker.request("root", epsilon)
            start = tracker.num_charges
            assert tracker.request("root", 0.2)
            spent = tracker.charged_between(start, tracker.num_charges)
            assert spent == 0.2  # exactly, whatever charged before it

    def test_snapshot_brackets_expose_charge_indices(self, relation):
        manager = SessionManager()
        scheduler = PlanScheduler(manager)
        session = manager.create_session("acme", relation, 10.0, seed=7)
        before = session.kernel.budget_snapshot()
        scheduler.execute(
            QueryRequest(session.session_id, plan="Identity", epsilon=0.25)
        )
        after = session.kernel.budget_snapshot()
        assert after.num_charges > before.num_charges
        assert session.kernel.budget_charged_between(before, after) == 0.25
