"""Fig. 4b — multi-dimensional plan runtime vs domain size.

Paper setting: the census-style high-dimensional plans (DAWA-Striped,
PrivBayesLS, HB-Striped, HB-Striped_kron) are run on domains of 10^4 ... 10^8
cells; measurement sub-matrices use dense / sparse / implicit representations,
plus a "Basic sparse" variant of HB-Striped_kron whose Kronecker-product query
matrix is replaced by one materialised sparse matrix over the full domain.

Paper result: sparse and implicit scale ~10x beyond dense; the Kronecker
formulation (HB-Striped_kron) scales ~10x beyond the partition formulation,
and far beyond "Basic sparse".

Domains are built by growing the income attribute of the census schema.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis import format_table
from repro.dataset import synthetic_cps
from repro.plans import (
    DawaStripedPlan,
    HbStripedKronPlan,
    HbStripedPlan,
    PrivBayesLsPlan,
)
from repro.plans.base import with_representation
from repro.private import protect


def _census(income_bins: int, num_records: int = 20_000):
    return synthetic_cps(num_records=num_records, income_bins=income_bins, seed=2000)


def _plans(domain, representation: str):
    return {
        "DAWA-Striped": DawaStripedPlan(domain, stripe_axis=0, representation=representation),
        "PrivBayesLS": PrivBayesLsPlan(domain, seed=0),
        "HB-Striped": HbStripedPlan(domain, stripe_axis=0, representation=representation),
        "HB-Striped_kron": HbStripedKronPlan(domain, stripe_axis=0, representation=representation),
    }


def run_experiment(
    income_bins_list=(20, 100, 500),
    representations=("sparse", "implicit"),
    epsilon: float = 0.1,
    time_limit: float = 30.0,
    plans: list[str] | None = None,
    seed: int = 0,
):
    """Return rows (plan, representation, domain size, runtime or None)."""
    rows = []
    for income_bins in income_bins_list:
        relation = _census(income_bins)
        domain = relation.schema.domain
        domain_size = relation.domain_size
        for representation in representations:
            for plan_name, plan in _plans(domain, representation).items():
                if plans and plan_name not in plans:
                    continue
                source = protect(relation, epsilon, seed=seed).vectorize()
                start = time.perf_counter()
                try:
                    plan.run(source, epsilon)
                    elapsed = time.perf_counter() - start
                except (MemoryError, ValueError):
                    elapsed = None
                if elapsed is not None and elapsed > time_limit:
                    elapsed = None
                rows.append((plan_name, representation, domain_size, elapsed))

        # "Basic sparse": HB-Striped_kron with its Kronecker matrix materialised.
        if "Basic sparse" in (plans or ["Basic sparse"]):
            from repro.operators.selection.stripe import stripe_kron_select
            from repro.operators.inference import least_squares

            source = protect(relation, epsilon, seed=seed).vectorize()
            start = time.perf_counter()
            try:
                measurements = with_representation(
                    stripe_kron_select(domain, stripe_axis=0), "sparse"
                )
                answers = source.vector_laplace(measurements, epsilon)
                least_squares(measurements, answers)
                elapsed = time.perf_counter() - start
            except MemoryError:
                elapsed = None
            if elapsed is not None and elapsed > time_limit:
                elapsed = None
            rows.append(("Basic sparse", "sparse (materialised)", domain_size, elapsed))
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="grow income to 5000 bins (slow)")
    args = parser.parse_args()
    bins = (20, 100, 500, 5000) if args.full else (20, 100, 500)
    rows = run_experiment(income_bins_list=bins, time_limit=300.0 if args.full else 30.0)
    print("\nFig. 4b — multi-dimensional plan runtime (s) vs domain size\n")
    print(
        format_table(
            ["plan", "representation", "domain size", "runtime (s)"],
            [[p, r, n, "timeout/skip" if t is None else t] for p, r, n, t in rows],
        )
    )


# ----------------------------------------------------------------------------
# pytest-benchmark entry points.
# ----------------------------------------------------------------------------
def _run_plan(plan_name: str, income_bins: int = 50):
    relation = _census(income_bins, num_records=10_000)
    domain = relation.schema.domain
    plan = _plans(domain, "implicit")[plan_name]
    source = protect(relation, 0.1, seed=0).vectorize()
    return plan.run(source, 0.1)


def test_benchmark_hb_striped_kron_implicit(benchmark):
    benchmark(_run_plan, "HB-Striped_kron")


def test_benchmark_hb_striped_partitioned(benchmark):
    benchmark(_run_plan, "HB-Striped")


def test_benchmark_dawa_striped(benchmark):
    benchmark(_run_plan, "DAWA-Striped")


def test_fig4b_shape_reproduces():
    """The Kronecker formulation completes on a domain where timings stay bounded."""
    rows = run_experiment(
        income_bins_list=(50,), representations=("implicit",), plans=["HB-Striped_kron", "HB-Striped"]
    )
    runtime = {p: t for p, _, _, t in rows}
    assert runtime["HB-Striped_kron"] is not None
    assert runtime["HB-Striped"] is not None


if __name__ == "__main__":
    main()
