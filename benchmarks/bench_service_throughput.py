"""Service-layer throughput: requests/second, cached vs. uncached, 1-8 workers.

Measures the `repro.service` scheduler answering a prefix-workload request
with the Identity plan across a pool of tenant sessions:

* **uncached** — every request executes its plan against the kernel
  (``reuse=False``); requests on the same session serialise on its lock, so
  scaling comes from spreading tenants across workers;
* **cached** — the same request repeated, answered from the measurement cache
  with zero budget spent.

Run:  python benchmarks/bench_service_throughput.py [--domain N] [--requests M]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis import format_table
from repro.service import PlanScheduler, QueryRequest, SessionManager

try:
    from .conftest import vector_relation
except ImportError:  # pragma: no cover
    from conftest import vector_relation


def build_service(num_sessions: int, domain: int, seed: int = 0):
    """A manager with ``num_sessions`` tenant sessions over random histograms."""
    rng = np.random.default_rng(seed)
    manager = SessionManager()
    for index in range(num_sessions):
        manager.create_session(
            f"tenant{index}",
            vector_relation(rng.integers(0, 100, size=domain).astype(np.float64)),
            epsilon_total=10_000.0,
            seed=index,
        )
    return manager


def make_requests(manager, num_requests: int, domain: int, reuse: bool):
    """Round-robin identity/prefix requests across the service's sessions."""
    sessions = manager.sessions()
    return [
        QueryRequest(
            sessions[index % len(sessions)].session_id,
            plan="Identity",
            epsilon=0.01,
            workload="prefix",
            workload_params={"n": domain},
            reuse=reuse,
        )
        for index in range(num_requests)
    ]


def run_experiment(
    domain: int = 1024,
    num_requests: int = 64,
    num_sessions: int = 8,
    workers: tuple[int, ...] = (1, 2, 4, 8),
):
    """Rows of (workers, uncached req/s, cached req/s, speedup of caching)."""
    rows = []
    for num_workers in workers:
        manager = build_service(num_sessions, domain)
        scheduler = PlanScheduler(manager, max_workers=num_workers)

        fresh = make_requests(manager, num_requests, domain, reuse=False)
        start = time.perf_counter()
        scheduler.execute_batch(fresh)
        uncached_seconds = time.perf_counter() - start

        # Warm the cache with one canonical request per session, then replay.
        warm = make_requests(manager, num_sessions, domain, reuse=True)
        scheduler.execute_batch(warm)
        repeats = make_requests(manager, num_requests, domain, reuse=True)
        start = time.perf_counter()
        responses = scheduler.execute_batch(repeats)
        cached_seconds = time.perf_counter() - start
        assert all(response.cached for response in responses)

        rows.append(
            {
                "workers": num_workers,
                "uncached_rps": num_requests / uncached_seconds,
                "cached_rps": num_requests / cached_seconds,
                "cache_speedup": uncached_seconds / max(cached_seconds, 1e-12),
            }
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domain", type=int, default=1024)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--sessions", type=int, default=8)
    args = parser.parse_args()
    rows = run_experiment(args.domain, args.requests, args.sessions)
    print(
        f"\nService throughput — {args.requests} requests over {args.sessions} "
        f"sessions, domain {args.domain}\n"
    )
    print(
        format_table(
            ["workers", "uncached req/s", "cached req/s", "cache speedup"],
            [
                [r["workers"], r["uncached_rps"], r["cached_rps"], r["cache_speedup"]]
                for r in rows
            ],
        )
    )


# ----------------------------------------------------------------------------
# pytest-benchmark entry points.
# ----------------------------------------------------------------------------
def test_benchmark_uncached_throughput(benchmark):
    manager = build_service(4, 512)
    scheduler = PlanScheduler(manager, max_workers=4)
    benchmark(
        lambda: scheduler.execute_batch(make_requests(manager, 16, 512, reuse=False))
    )


def test_benchmark_cached_throughput(benchmark):
    manager = build_service(4, 512)
    scheduler = PlanScheduler(manager, max_workers=4)
    scheduler.execute_batch(make_requests(manager, 4, 512, reuse=True))
    benchmark(
        lambda: scheduler.execute_batch(make_requests(manager, 16, 512, reuse=True))
    )


def test_cached_path_spends_no_budget():
    """Qualitative claim: replayed requests are budget-free and much faster."""
    manager = build_service(2, 256)
    scheduler = PlanScheduler(manager, max_workers=2)
    scheduler.execute_batch(make_requests(manager, 2, 256, reuse=True))
    consumed = [session.budget_consumed() for session in manager.sessions()]
    responses = scheduler.execute_batch(make_requests(manager, 8, 256, reuse=True))
    assert all(response.cached for response in responses)
    assert [session.budget_consumed() for session in manager.sessions()] == consumed


if __name__ == "__main__":
    main()
