"""Benchmark of the durability layer: journal overhead, snapshot, recovery.

Four sections:

* ``journal_overhead`` — per-request service latency without a journal vs
  with a journal in each fsync mode (``never``, ``commit``, ``always``),
  measured on two request streams: ``Identity`` (the cheapest possible
  request, the worst case for any fixed per-request cost) and ``DAWA`` on a
  paper-scale 1024-bin domain (a representative data-dependent request).
  **Gated**: on the DAWA stream the
  default ``commit`` mode (flush per request, durable against process
  death) must cost less than ``--max-journal-overhead`` of the journal-free
  request latency.  The Identity floor and the ``always`` mode
  (``os.fsync`` per request, durable against power loss) are recorded
  ungated — the former is a microbenchmark denominator, the latter pays the
  device's sync latency by design and is an explicit opt-in.
* ``snapshot_restore`` — time to snapshot a warm session and to restore one
  from a snapshot plus a journal suffix (the recovery path a crashed
  process takes at startup).
* ``recovery_scaling`` — journal-only restore time vs journal length, i.e.
  how replay cost grows with the number of journaled requests.
* ``lifecycle_overhead`` — per-request cost of the request-lifecycle guards
  (admission control + circuit breaker + deadline bookkeeping) relative to
  the bare scheduler.

Each run appends one trajectory point to ``BENCH_robustness.json`` at the
repo root.  CI runs ``--quick`` mode with loose thresholds so slow runners
do not flake.

Usage::

    python benchmarks/bench_robustness.py            # full sizes
    python benchmarks/bench_robustness.py --quick    # CI smoke mode
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.dataset import Attribute, Relation, Schema
from repro.durability import PrivacyJournal
from repro.service import (
    AdmissionController,
    CircuitBreaker,
    PlanScheduler,
    QueryRequest,
    SessionManager,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_robustness.json"

DOMAIN = 64
#: Domain of the gated representative stream — the 1-D domain scale the
#: source paper's data-dependent experiments run at.
GATE_DOMAIN = 1024


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _relation(domain: int = DOMAIN) -> Relation:
    rng = np.random.default_rng(0)
    schema = Schema.build([Attribute("v", domain)])
    return Relation.from_histogram(schema, rng.integers(0, 50, size=domain))


def _request(session, index: int, plan: str = "Identity", domain: int = DOMAIN) -> QueryRequest:
    # Distinct epsilons keep every request a genuine cache miss.
    return QueryRequest(
        session.session_id,
        plan=plan,
        epsilon=0.1 + index * 1e-6,
        workload="prefix",
        workload_params={"n": domain},
        reuse=False,
    )


def _run_session(
    num_requests: int, journal=None, plan: str = "Identity", domain: int = DOMAIN
):
    manager = SessionManager()
    scheduler = PlanScheduler(manager)
    session = manager.create_session(
        "bench",
        _relation(domain),
        epsilon_total=num_requests * 0.2,
        seed=0,
        journal=journal,
    )
    for index in range(num_requests):
        scheduler.execute(_request(session, index, plan, domain))
    return scheduler, session


def bench_journal_overhead(
    plan: str, num_requests: int, repeats: int, tmpdir: Path, domain: int = DOMAIN
) -> list[dict]:
    """Per-request latency by journal mode, as overhead over no journal."""
    # Warm the plan/workload machinery so the first timed mode does not pay
    # one-time construction costs that would skew the baseline.
    _run_session(min(num_requests, 5), plan=plan, domain=domain)
    # This section carries the CI gate and shared runners are noisy on every
    # timescale, so the design is paired: one live session per mode, and each
    # request index executes across all four modes back-to-back.  Adjacent
    # samples see the same machine state, so a slow window inflates every
    # mode equally instead of masquerading as journal overhead; per-request
    # MEDIANS then shrug off the GC pauses and scheduler hiccups that a
    # min-of-runs design lets poison one whole mode.
    repeats = max(repeats, 3)
    modes = [("none", None), ("never", "never"), ("commit", "commit"), ("always", "always")]
    samples: dict[str, list[float]] = {label: [] for label, _ in modes}
    counter = iter(range(100_000))
    for _ in range(repeats):
        lanes = []
        for label, fsync in modes:
            journal = None
            if fsync is not None:
                journal = PrivacyJournal(
                    tmpdir / f"bench-{plan}-{label}-{next(counter)}.wal", fsync=fsync
                )
            manager = SessionManager()
            scheduler = PlanScheduler(manager)
            session = manager.create_session(
                "bench",
                _relation(domain),
                epsilon_total=num_requests * 0.2,
                seed=0,
                journal=journal,
            )
            lanes.append((label, journal, scheduler, session))
        for index in range(num_requests):
            for label, journal, scheduler, session in lanes:
                request = _request(session, index, plan, domain)
                start = time.perf_counter()
                scheduler.execute(request)
                samples[label].append(time.perf_counter() - start)
        for _, journal, _, _ in lanes:
            if journal is not None:
                journal.close()
    baseline_seconds = statistics.median(samples["none"])
    results = []
    for label, _ in modes:
        per_request = statistics.median(samples[label])
        # Overhead from the median of paired differences (mode minus the
        # no-journal lane at the same request index, microseconds apart in
        # wall time), not from a ratio of two independent medians — the
        # pairing cancels whatever drift survives the interleaving.
        delta = statistics.median(
            m - n for m, n in zip(samples[label], samples["none"])
        )
        results.append(
            {
                "section": "journal_overhead",
                "plan": plan,
                "domain": domain,
                "mode": label,
                "num_requests": num_requests,
                "request_seconds": per_request,
                "overhead_fraction": delta / baseline_seconds if label != "none" else 0.0,
            }
        )
    return results


def bench_snapshot_restore(num_requests: int, repeats: int, tmpdir: Path) -> list[dict]:
    """Cost of snapshotting a warm session and of restoring after a crash."""
    path = tmpdir / "snapshot-bench.wal"
    journal = PrivacyJournal(path, fsync="commit")
    scheduler, session = _run_session(num_requests, journal=journal)
    snap_seconds = _time(
        lambda: scheduler.snapshot_session(session.session_id), repeats
    )
    snapshot = scheduler.snapshot_session(session.session_id)
    snapshot_bytes = len(json.dumps(snapshot))
    journal.close()

    relation = _relation()

    def restore():
        fresh = PlanScheduler(SessionManager())
        fresh.restore_session(relation, snapshot=snapshot, journal=PrivacyJournal(path))

    restore_seconds = _time(restore, repeats)
    return [
        {
            "section": "snapshot_restore",
            "num_requests": num_requests,
            "snapshot_seconds": snap_seconds,
            "snapshot_bytes": snapshot_bytes,
            "restore_seconds": restore_seconds,
        }
    ]


def bench_recovery_scaling(sizes: list[int], repeats: int, tmpdir: Path) -> list[dict]:
    """Journal-only restore time as a function of journal length."""
    results = []
    relation = _relation()
    for size in sizes:
        path = tmpdir / f"recovery-{size}.wal"
        journal = PrivacyJournal(path, fsync="commit")
        _run_session(size, journal=journal)
        journal.close()
        records = PrivacyJournal(path).seq

        def restore():
            fresh = PlanScheduler(SessionManager())
            fresh.restore_session(relation, journal=PrivacyJournal(path))

        seconds = _time(restore, repeats)
        results.append(
            {
                "section": "recovery_scaling",
                "num_requests": size,
                "journal_records": records,
                "restore_seconds": seconds,
                "records_per_second": records / max(seconds, 1e-12),
            }
        )
    return results


def bench_lifecycle_overhead(num_requests: int, repeats: int) -> list[dict]:
    """Cost of admission + breaker + deadline bookkeeping per request."""
    bare = _time(lambda: _run_session(num_requests), repeats) / num_requests

    def run_guarded():
        manager = SessionManager()
        scheduler = PlanScheduler(
            manager,
            admission=AdmissionController(
                max_queue_depth=64, max_inflight_per_tenant=16
            ),
            breaker=CircuitBreaker(),
        )
        session = manager.create_session(
            "bench", _relation(), epsilon_total=num_requests * 0.2, seed=0
        )
        for index in range(num_requests):
            scheduler.execute(
                QueryRequest(
                    session.session_id,
                    plan="Identity",
                    epsilon=0.1 + index * 1e-6,
                    workload="prefix",
                    workload_params={"n": DOMAIN},
                    reuse=False,
                    deadline_seconds=60.0,
                )
            )

    guarded = _time(run_guarded, repeats) / num_requests
    return [
        {
            "section": "lifecycle_overhead",
            "num_requests": num_requests,
            "bare_request_seconds": bare,
            "guarded_request_seconds": guarded,
            "overhead_fraction": (guarded - bare) / bare,
        }
    ]


def record_trajectory(point: dict) -> None:
    """Append this run to the BENCH_robustness.json trajectory file."""
    if TRAJECTORY_PATH.exists():
        data = json.loads(TRAJECTORY_PATH.read_text())
    else:
        data = {"benchmark": "robustness", "trajectory": []}
    data["trajectory"].append(point)
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode: fewer sizes/repeats")
    parser.add_argument(
        "--max-journal-overhead",
        type=float,
        default=None,
        help="fail if the default (fsync='commit') journal costs more than "
        "this fraction of journal-free DAWA request latency (default: 0.10, "
        "both modes — the margin is wide enough for noisy CI hardware)",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="skip appending to BENCH_robustness.json"
    )
    args = parser.parse_args()

    if args.quick:
        repeats = 1
        num_requests = 60
        recovery_sizes = [20, 60]
    else:
        repeats = 3
        num_requests = 300
        recovery_sizes = [50, 150, 300]

    max_overhead = (
        args.max_journal_overhead if args.max_journal_overhead is not None else 0.10
    )

    with tempfile.TemporaryDirectory(prefix="bench-robustness-") as tmp:
        tmpdir = Path(tmp)
        results = bench_journal_overhead("Identity", num_requests, repeats, tmpdir)
        results += bench_journal_overhead(
            "DAWA",
            max(num_requests // 4, 15),
            repeats,
            tmpdir,
            domain=GATE_DOMAIN,
        )
        results += bench_snapshot_restore(num_requests, repeats, tmpdir)
        results += bench_recovery_scaling(recovery_sizes, repeats, tmpdir)
        results += bench_lifecycle_overhead(num_requests, repeats)

    print(f"\nRobustness benchmark ({'quick' if args.quick else 'full'} mode)\n")
    for r in results:
        if r["section"] == "journal_overhead":
            print(
                f"  journal_overhead plan={r['plan']:8s} n={r['domain']:4d} "
                f"mode={r['mode']:7s} {r['request_seconds'] * 1e6:8.1f} us/request "
                f"(+{r['overhead_fraction'] * 100:6.2f}%)"
            )
        elif r["section"] == "snapshot_restore":
            print(
                f"  snapshot_restore snapshot {r['snapshot_seconds'] * 1e3:7.2f} ms "
                f"({r['snapshot_bytes']} bytes), restore "
                f"{r['restore_seconds'] * 1e3:7.2f} ms over {r['num_requests']} requests"
            )
        elif r["section"] == "recovery_scaling":
            print(
                f"  recovery_scaling {r['journal_records']:5d} records -> "
                f"{r['restore_seconds'] * 1e3:7.2f} ms "
                f"({r['records_per_second']:8.0f} records/s)"
            )
        else:
            print(
                f"  lifecycle_overhead bare {r['bare_request_seconds'] * 1e6:7.1f} us, "
                f"guarded {r['guarded_request_seconds'] * 1e6:7.1f} us "
                f"(+{r['overhead_fraction'] * 100:.2f}%)"
            )

    commit = next(
        r
        for r in results
        if r["section"] == "journal_overhead"
        and r["mode"] == "commit"
        and r["plan"] == "DAWA"
    )
    print(
        f"\nGate: default-journal overhead on DAWA@{GATE_DOMAIN} requests "
        f"{commit['overhead_fraction'] * 100:.2f}% (threshold {max_overhead * 100:.1f}%)"
    )

    if not args.no_record:
        record_trajectory(
            {
                "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "mode": "quick" if args.quick else "full",
                "results": results,
            }
        )
        print(f"Trajectory point appended to {TRAJECTORY_PATH.name}")

    if commit["overhead_fraction"] > max_overhead:
        print("FAIL: write-ahead journal is no longer cheap in its default mode", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
