"""Benchmark of the vectorized data-dependent plan engine.

Measures the four hot paths this engine rewired, each against the retained
seed implementation:

* ``dawa_dp`` — the DAWA L1 partition DP (:func:`l1_partition`) versus the
  scalar reference issuing one Python-level ``interval_cost`` call per
  (end, dyadic length) pair;
* ``dawa_dp_striped`` — :func:`l1_partition_batch` across the stripes of a
  striped plan (the DawaStripedPlan hot path: many short histograms) versus
  one scalar reference DP per stripe.  **Gated**: the batch at a total domain
  of ``n = 4096`` must stay >= ``--min-dawa-speedup`` faster;
* ``ahp_clustering`` — the vectorized AHP greedy clustering versus the
  per-cell scalar reference;
* ``mw_sequential`` — one sequential multiplicative-weights pass with
  support-sparse exponentials versus the dense update (bit-identical
  trajectories; only the wasted ``exp`` calls differ);
* ``expected_error`` — the Gram-engine :func:`expected_workload_error`
  (factorise once, blocked trace) versus the seed's per-workload-row
  ``pinv(A^T A)`` recomputation.  **Gated** at ``--min-error-speedup``.  The
  baseline is measured on a few rows and extrapolated linearly in the row
  count (exact: the seed's per-row cost is a constant pinv); for domains where
  even one pinv is impractical the per-row cost is extrapolated cubically
  from the largest measured domain and marked ``"baseline": "extrapolated"``.

Each run appends one trajectory point to ``BENCH_data_dependent.json`` at the
repo root.  CI runs ``--quick`` mode with loose 5x floors so slow runners do
not flake; full mode asserts the engine's headline numbers (>= 50x on the
striped DAWA DP, >= 100x on expected-error analysis).

Usage::

    python benchmarks/bench_data_dependent.py            # full sizes
    python benchmarks/bench_data_dependent.py --quick    # CI smoke mode
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis import expected_workload_error
from repro.matrix import Identity, RangeQueries, ReductionMatrix, VStack
from repro.operators.inference import multiplicative_weights
from repro.operators.partition import cluster_sorted_counts, l1_partition, l1_partition_batch
from repro.operators.partition.ahp import _reference_cluster_sorted_counts
from repro.operators.partition.dawa import _reference_l1_partition

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_data_dependent.json"

#: Stripe layout of the gated striped-DP measurement: 256 stripes of 16 cells,
#: a 4096-cell total domain (e.g. a coarse attribute striped over a 2-D census
#: product domain).
GATE_STRIPES = (256, 16)


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _quantize(values: np.ndarray) -> np.ndarray:
    """Snap to a 2^-20 grid: dyadic-rational cells make every interval cost
    exactly representable, so the vectorized-vs-reference equality asserts
    below are guaranteed (not at the mercy of final-ulp summation-order
    rounding on arbitrary floats).  Timing is unaffected."""
    return np.round(values * 2.0**20) / 2.0**20


def _plateau_histogram(rng, n: int, noise_scale: float) -> np.ndarray:
    """A piecewise-constant histogram with Laplace noise (DAWA's target shape)."""
    plateau = np.repeat(rng.integers(0, 100, n // 16 + 1), 16)[:n].astype(np.float64)
    return _quantize(plateau + rng.laplace(0.0, noise_scale, n))


def bench_dawa_dp(sizes, repeats):
    results = []
    rng = np.random.default_rng(0)
    noise_scale = 2.0
    for n in sizes:
        noisy = _plateau_histogram(rng, n, noise_scale)
        reference = _time(lambda: _reference_l1_partition(noisy, noise_scale), repeats)
        vectorized = _time(lambda: l1_partition(noisy, noise_scale), repeats)
        assert np.array_equal(
            l1_partition(noisy, noise_scale), _reference_l1_partition(noisy, noise_scale)
        )
        results.append(
            {
                "section": "dawa_dp",
                "n": n,
                "reference_seconds": reference,
                "vectorized_seconds": vectorized,
                "speedup": reference / max(vectorized, 1e-12),
            }
        )
    return results


def bench_dawa_dp_striped(stripe_shapes, repeats):
    results = []
    rng = np.random.default_rng(1)
    noise_scale = 1.5
    for num_stripes, stripe_length in stripe_shapes:
        blocks = rng.integers(0, 60, size=(num_stripes, stripe_length)).astype(np.float64)
        blocks = _quantize(blocks + rng.laplace(0.0, noise_scale, size=blocks.shape))

        def per_stripe_reference():
            return [_reference_l1_partition(row, noise_scale) for row in blocks]

        reference = _time(per_stripe_reference, repeats)
        vectorized = _time(lambda: l1_partition_batch(blocks, noise_scale), repeats)
        assert np.array_equal(
            l1_partition_batch(blocks, noise_scale), np.stack(per_stripe_reference())
        )
        results.append(
            {
                "section": "dawa_dp_striped",
                "n": num_stripes * stripe_length,
                "num_stripes": num_stripes,
                "stripe_length": stripe_length,
                "reference_seconds": reference,
                "vectorized_seconds": vectorized,
                "speedup": reference / max(vectorized, 1e-12),
            }
        )
    return results


def bench_ahp_clustering(sizes, repeats):
    results = []
    rng = np.random.default_rng(2)
    for n in sizes:
        noisy = np.maximum(rng.laplace(5.0, 25.0, n), 0.0)
        reference = _time(lambda: _reference_cluster_sorted_counts(noisy), repeats)
        vectorized = _time(lambda: cluster_sorted_counts(noisy), repeats)
        assert np.array_equal(
            cluster_sorted_counts(noisy), _reference_cluster_sorted_counts(noisy)
        )
        results.append(
            {
                "section": "ahp_clustering",
                "n": n,
                "reference_seconds": reference,
                "vectorized_seconds": vectorized,
                "speedup": reference / max(vectorized, 1e-12),
            }
        )
    return results


def bench_mw_sequential(n, num_queries, repeats, iterations=10, max_range=64):
    """Sequential-MW pass time: support-sparse exponentials versus dense.

    Short range queries (the common workload row) make the contrast sharp:
    the dense update exponentiates all ``n`` cells per query, the support
    update only the covered range.  Both trajectories are bit-identical.
    Rows are pre-extracted once and passed through ``row_cache`` — the MWEM
    history-replay shape, where the same rows are swept pass after pass and
    the extraction cost is long amortised.
    """
    rng = np.random.default_rng(3)
    starts = rng.integers(0, n - max_range, size=num_queries)
    widths = rng.integers(1, max_range, size=num_queries)
    queries = RangeQueries(n, [(int(s), int(s + w)) for s, w in zip(starts, widths)])
    x_true = rng.integers(0, 50, size=n).astype(np.float64)
    answers = queries.matvec(x_true) + rng.normal(0.0, 1.0, num_queries)
    total = float(x_true.sum())
    rows = queries.rows(np.arange(num_queries))

    def run(support_sparse):
        return multiplicative_weights(
            queries,
            answers,
            total=total,
            iterations=iterations,
            support_sparse=support_sparse,
            row_cache=rows,
        )

    dense = _time(lambda: run(False), repeats)
    sparse = _time(lambda: run(True), repeats)
    assert np.array_equal(run(True).x_hat, run(False).x_hat)
    return [
        {
            "section": "mw_sequential",
            "n": n,
            "num_queries": num_queries,
            "iterations": iterations,
            "dense_seconds": dense,
            "support_seconds": sparse,
            "speedup": dense / max(sparse, 1e-12),
        }
    ]


def _partition_strategy(n: int, group_width: int = 8):
    """A DAWA-style strategy: disjoint group totals stacked on the identity."""
    return VStack([ReductionMatrix(np.arange(n) // group_width), Identity(n)])


def bench_expected_error(sizes, num_queries, repeats, baseline_rows_by_n):
    """Gram-engine expected-error analysis versus per-row pinv recomputation.

    The baseline's per-row cost is one dense ``pinv(A^T A)`` plus a quadratic
    form; it is measured on ``baseline_rows_by_n[n]`` rows and extrapolated
    linearly to the full workload (exact — the seed recomputed the pinv for
    *every* row).  Sizes with no measured rows extrapolate the per-row cost
    cubically (the SVD's complexity) from the largest measured size.
    """
    results = []
    rng = np.random.default_rng(4)
    measured_per_row: dict[int, float] = {}
    for n in sizes:
        pairs = rng.integers(0, n, size=(num_queries, 2))
        workload = RangeQueries(n, [(min(a, b), max(a, b)) for a, b in pairs])
        strategy = _partition_strategy(n)
        engine = _time(lambda: expected_workload_error(workload, strategy), repeats)

        rows_to_measure = baseline_rows_by_n.get(n, 0)
        if rows_to_measure:
            W = workload.rows(np.arange(rows_to_measure))
            A = strategy.dense()
            sensitivity = float(np.abs(A).sum(axis=0).max())

            def per_row_pinv():
                return sum(
                    2.0 * sensitivity**2 * float(q @ np.linalg.pinv(A.T @ A) @ q)
                    for q in W
                )

            per_row = _time(per_row_pinv, 1) / rows_to_measure
            measured_per_row[n] = per_row
            baseline_kind = "measured_rows"
        else:
            reference_n = max(measured_per_row)
            per_row = measured_per_row[reference_n] * (n / reference_n) ** 3
            baseline_kind = "extrapolated"
        baseline = per_row * num_queries
        results.append(
            {
                "section": "expected_error",
                "n": n,
                "num_queries": num_queries,
                "baseline": baseline_kind,
                "baseline_rows_measured": rows_to_measure,
                "baseline_seconds": baseline,
                "engine_seconds": engine,
                "speedup": baseline / max(engine, 1e-12),
            }
        )
    return results


def record_trajectory(point: dict) -> None:
    """Append this run to the BENCH_data_dependent.json trajectory file."""
    if TRAJECTORY_PATH.exists():
        data = json.loads(TRAJECTORY_PATH.read_text())
    else:
        data = {"benchmark": "data_dependent_engine", "trajectory": []}
    data["trajectory"].append(point)
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode: fewer sizes/repeats")
    parser.add_argument(
        "--min-dawa-speedup",
        type=float,
        default=None,
        help="fail if the striped DAWA DP speedup at the n=4096 gate layout "
        "falls below this (default: 50 full, 5 quick — CI hardware is noisy)",
    )
    parser.add_argument(
        "--min-error-speedup",
        type=float,
        default=None,
        help="fail if the expected-workload-error speedup at the largest "
        "measured-baseline domain falls below this (default: 100 full, 5 quick)",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="skip appending to BENCH_data_dependent.json"
    )
    args = parser.parse_args()

    if args.quick:
        repeats = 1
        dawa_sizes = [1024]
        ahp_sizes = [4096]
        stripe_shapes = [GATE_STRIPES]
        mw_config = (512, 256)
        error_sizes = [512]
        baseline_rows = {512: 4}
    else:
        repeats = 3
        dawa_sizes = [1024, 4096, 16384]
        ahp_sizes = [1024, 4096, 16384]
        stripe_shapes = [GATE_STRIPES, (128, 32), (64, 64)]
        mw_config = (4096, 1024)
        error_sizes = [1024, 4096, 16384]
        baseline_rows = {1024: 3, 4096: 1}  # one pinv at 4096 is ~half a minute

    min_dawa = args.min_dawa_speedup if args.min_dawa_speedup is not None else (
        5.0 if args.quick else 50.0
    )
    min_error = args.min_error_speedup if args.min_error_speedup is not None else (
        5.0 if args.quick else 100.0
    )

    results = bench_dawa_dp(dawa_sizes, repeats)
    results += bench_dawa_dp_striped(stripe_shapes, repeats)
    results += bench_ahp_clustering(ahp_sizes, repeats)
    results += bench_mw_sequential(mw_config[0], mw_config[1], repeats)
    results += bench_expected_error(error_sizes, 2048, max(repeats - 1, 1), baseline_rows)

    print(f"\nVectorized data-dependent engine ({'quick' if args.quick else 'full'} mode)\n")
    for r in results:
        label = f"{r['section']} n={r['n']}"
        if "num_stripes" in r:
            label += f" ({r['num_stripes']}x{r['stripe_length']})"
        print(f"  {label:44s} speedup {r['speedup']:10.1f}x")

    dawa_gate = next(
        r
        for r in results
        if r["section"] == "dawa_dp_striped"
        and (r["num_stripes"], r["stripe_length"]) == GATE_STRIPES
    )
    error_gate = max(
        (r for r in results if r["section"] == "expected_error" and r["baseline_rows_measured"]),
        key=lambda r: r["n"],
    )
    print(
        f"\nGate: striped DAWA DP at n={dawa_gate['n']}: {dawa_gate['speedup']:.1f}x "
        f"(threshold {min_dawa:.1f}x)"
    )
    print(
        f"Gate: expected_workload_error at n={error_gate['n']}: "
        f"{error_gate['speedup']:.1f}x (threshold {min_error:.1f}x)"
    )

    if not args.no_record:
        record_trajectory(
            {
                "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "mode": "quick" if args.quick else "full",
                "results": results,
            }
        )
        print(f"Trajectory point appended to {TRAJECTORY_PATH.name}")

    if dawa_gate["speedup"] < min_dawa:
        print("FAIL: striped DAWA DP regression", file=sys.stderr)
        return 1
    if error_gate["speedup"] < min_error:
        print("FAIL: expected-error engine regression", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
