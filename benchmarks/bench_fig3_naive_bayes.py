"""Fig. 3 — Naive Bayes classification on Credit Default: AUC vs epsilon.

Paper setting: the UCI credit-default data (here: the synthetic stand-in with
the same 17,248-cell predictor domain), predictors X3-X6, 10 repetitions of
10-fold cross-validation, epsilon in {1e-3, 1e-2, 1e-1}.  Reported: the median
(and 25/75 percentiles) of the average AUC for

    Unperturbed (non-private), Majority (constant classifier),
    Identity, Workload ("Cormode"), WorkloadLS, SelectLS.

Paper result: WorkloadLS and SelectLS dominate the DP baselines, approach the
unperturbed classifier for larger epsilon, and all DP methods degrade to the
majority baseline (AUC 0.5) as epsilon → 1e-3.

Default run uses 3-fold CV and fewer records; ``--full`` matches the paper.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import (
    cross_validate_auc,
    fit_naive_bayes_exact,
    format_table,
    majority_auc,
)
from repro.dataset import PREDICTOR_NAMES, synthetic_credit_default
from repro.plans import NAIVE_BAYES_PLANS

LABEL = "default"


def run_experiment(
    epsilons=(1e-3, 1e-2, 1e-1),
    num_records: int = 10_000,
    folds: int = 3,
    repeats: int = 2,
    seed: int = 0,
) -> dict[float, dict[str, tuple[float, float, float]]]:
    """Return {epsilon: {classifier: (p25, median, p75) of AUC}}."""
    relation = synthetic_credit_default(num_records=num_records, seed=2009)
    predictors = list(PREDICTOR_NAMES)
    results: dict[float, dict[str, tuple[float, float, float]]] = {}

    # Non-private baselines are independent of epsilon.
    unperturbed = cross_validate_auc(
        relation,
        LABEL,
        predictors,
        lambda train: fit_naive_bayes_exact(train, LABEL, predictors),
        folds=folds,
        repeats=repeats,
        seed=seed,
    )

    for epsilon in epsilons:
        per_classifier: dict[str, tuple[float, float, float]] = {
            "Unperturbed": (
                unperturbed.percentile(25),
                unperturbed.median,
                unperturbed.percentile(75),
            ),
            "Majority": (majority_auc(), majority_auc(), majority_auc()),
        }
        for name, fit in NAIVE_BAYES_PLANS.items():
            trial_counter = {"count": 0}

            def fit_fn(train, fit=fit, epsilon=epsilon, trial_counter=trial_counter):
                trial_counter["count"] += 1
                return fit(
                    train, LABEL, predictors, epsilon=epsilon, seed=seed + trial_counter["count"]
                )

            cv = cross_validate_auc(
                relation, LABEL, predictors, fit_fn, folds=folds, repeats=repeats, seed=seed
            )
            per_classifier[name] = (cv.percentile(25), cv.median, cv.percentile(75))
        results[epsilon] = per_classifier
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale CV (10x10 folds, 30k records)")
    args = parser.parse_args()
    if args.full:
        results = run_experiment(num_records=30_000, folds=10, repeats=10)
    else:
        results = run_experiment()
    print("\nFig. 3 — Naive Bayes on Credit Default: median AUC (25th-75th percentile)\n")
    classifiers = ["Unperturbed", "Majority", "Identity", "Workload", "WorkloadLS", "SelectLS"]
    rows = []
    for epsilon, per_classifier in results.items():
        for name in classifiers:
            p25, median, p75 = per_classifier[name]
            rows.append([epsilon, name, p25, median, p75])
    print(format_table(["epsilon", "classifier", "AUC p25", "AUC median", "AUC p75"], rows))


# ----------------------------------------------------------------------------
# pytest-benchmark entry points.
# ----------------------------------------------------------------------------
def _fit_once(plan_name: str, epsilon: float = 0.1):
    relation = synthetic_credit_default(num_records=5000, seed=2009)
    return NAIVE_BAYES_PLANS[plan_name](
        relation, LABEL, list(PREDICTOR_NAMES), epsilon=epsilon, seed=0
    )


def test_benchmark_nb_workload_ls(benchmark):
    benchmark(_fit_once, "WorkloadLS")


def test_benchmark_nb_select_ls(benchmark):
    benchmark(_fit_once, "SelectLS")


def test_benchmark_nb_identity(benchmark):
    benchmark(_fit_once, "Identity")


def test_fig3_shape_reproduces():
    """Qualitative Fig. 3 claims at the two extreme epsilons."""
    results = run_experiment(epsilons=(1e-3, 1e-1), num_records=8000, folds=3, repeats=1, seed=7)
    large_eps = results[1e-1]
    small_eps = results[1e-3]
    # At epsilon = 0.1 the new plans are clearly better than random guessing
    # and not far from the unperturbed classifier.
    assert large_eps["WorkloadLS"][1] > 0.55
    assert large_eps["SelectLS"][1] > 0.55
    assert large_eps["Unperturbed"][1] >= large_eps["WorkloadLS"][1] - 0.05
    # At epsilon = 0.001 the DP classifiers collapse towards the majority AUC.
    assert abs(small_eps["WorkloadLS"][1] - 0.5) < 0.15


if __name__ == "__main__":
    main()
