"""Table 6 — workload-based domain reduction: error and runtime improvements.

Paper setting: W = RandomRange with small ranges; algorithms AHP (128x128
domain), DAWA (4096), Identity (256x256), HB (4096).  For each algorithm the
table reports error and runtime on the original domain versus on the domain
reduced by the workload-based partition (Sec. 8), plus the improvement
factors.  Paper result: reduction improves error and runtime almost
universally (biggest error gain for Identity, biggest runtime gain for AHP).

Default run uses scaled-down domains; ``--full`` uses the paper's sizes.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis import format_table, per_query_l2_error
from repro.dataset import load_1d, load_2d
from repro.operators.partition import workload_based_partition
from repro.plans import AhpPlan, DawaPlan, HbPlan, IdentityPlan
from repro.private import protect
from repro.workload import random_range_workload

try:
    from .conftest import vector_relation
except ImportError:  # pragma: no cover
    from conftest import vector_relation


def _configs(full: bool):
    if full:
        return {
            "AHP": (128 * 128, "2d"),
            "DAWA": (4096, "1d"),
            "Identity": (256 * 256, "2d"),
            "HB": (4096, "1d"),
        }
    return {
        "AHP": (32 * 32, "2d"),
        "DAWA": (1024, "1d"),
        "Identity": (64 * 64, "2d"),
        "HB": (1024, "1d"),
    }


def _plan_for(name: str, workload):
    if name == "AHP":
        return AhpPlan()
    if name == "DAWA":
        return DawaPlan(workload_intervals=getattr(workload, "intervals", None))
    if name == "Identity":
        return IdentityPlan()
    if name == "HB":
        return HbPlan()
    raise KeyError(name)


def _dataset_for(domain_size: int, kind: str) -> np.ndarray:
    if kind == "2d":
        side = int(np.sqrt(domain_size))
        return load_2d("MIXTURE2D", (side, side), scale=200_000)
    return load_1d("PIECEWISE", n=domain_size, scale=200_000)


def run_experiment(full: bool = False, epsilon: float = 0.1, seed: int = 0, trials: int = 1):
    """Return rows: algorithm, original error/runtime, reduced error/runtime, factors."""
    rows = []
    for name, (domain_size, kind) in _configs(full).items():
        x = _dataset_for(domain_size, kind)
        workload = random_range_workload(
            domain_size,
            num_queries=min(1000, domain_size // 8),
            seed=seed,
            max_length=max(domain_size // 64, 2),
        )
        original_errors, original_times = [], []
        reduced_errors, reduced_times = [], []
        for trial in range(trials):
            # Original domain.
            plan = _plan_for(name, workload)
            source = protect(vector_relation(x), epsilon, seed=seed + trial).vectorize()
            start = time.perf_counter()
            result = plan.run(source, epsilon)
            original_times.append(time.perf_counter() - start)
            original_errors.append(per_query_l2_error(workload, x, result.x_hat))

            # Reduced domain: apply the workload-based partition first.
            start = time.perf_counter()
            partition = workload_based_partition(workload)
            source = protect(vector_relation(x), epsilon, seed=seed + trial + 100).vectorize()
            reduced_source = source.reduce_by_partition(partition)
            reduced_workload = partition.reduce_workload(workload)
            reduced_plan = _plan_for(
                name,
                workload if name != "DAWA" else reduced_workload,
            )
            if name == "DAWA":
                reduced_plan = DawaPlan()  # intervals are not preserved on the reduced domain
            reduced_result = reduced_plan.run(reduced_source, epsilon)
            reduced_times.append(time.perf_counter() - start)
            x_reduced = partition.reduce_vector(x)
            reduced_errors.append(
                per_query_l2_error(reduced_workload, x_reduced, reduced_result.x_hat, scale=x.sum())
            )

        original_error, reduced_error = np.mean(original_errors), np.mean(reduced_errors)
        original_time, reduced_time = np.mean(original_times), np.mean(reduced_times)
        rows.append(
            {
                "algorithm": name,
                "original_domain": domain_size,
                "reduced_domain": workload_based_partition(workload).num_groups,
                "original_error": float(original_error),
                "original_runtime": float(original_time),
                "reduced_error": float(reduced_error),
                "reduced_runtime": float(reduced_time),
                "error_factor": float(original_error / max(reduced_error, 1e-15)),
                "runtime_factor": float(original_time / max(reduced_time, 1e-12)),
            }
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--trials", type=int, default=2)
    args = parser.parse_args()
    rows = run_experiment(full=args.full, trials=args.trials)
    print("\nTable 6 — workload-based domain reduction (factors > 1 mean reduction helps)\n")
    print(
        format_table(
            [
                "algorithm",
                "n (orig)",
                "n (reduced)",
                "error orig",
                "error reduced",
                "error factor",
                "runtime orig",
                "runtime reduced",
                "runtime factor",
            ],
            [
                [
                    r["algorithm"],
                    r["original_domain"],
                    r["reduced_domain"],
                    r["original_error"],
                    r["reduced_error"],
                    r["error_factor"],
                    r["original_runtime"],
                    r["reduced_runtime"],
                    r["runtime_factor"],
                ]
                for r in rows
            ],
        )
    )


# ----------------------------------------------------------------------------
# pytest-benchmark entry points.
# ----------------------------------------------------------------------------
def test_benchmark_workload_based_partition(benchmark):
    workload = random_range_workload(4096, 500, seed=0, max_length=64)
    benchmark(workload_based_partition, workload)


def test_benchmark_identity_reduced_vs_original(benchmark):
    x = load_1d("PIECEWISE", n=1024, scale=100_000)
    workload = random_range_workload(1024, 200, seed=0, max_length=16)
    partition = workload_based_partition(workload)

    def run_reduced():
        source = protect(vector_relation(x), 0.1, seed=0).vectorize()
        reduced = source.reduce_by_partition(partition)
        return IdentityPlan().run(reduced, 0.1)

    benchmark(run_reduced)


def test_table6_shape_reproduces():
    """Qualitative Table 6 claim: reduction does not hurt error for Identity/HB."""
    rows = {r["algorithm"]: r for r in run_experiment(full=False, trials=2, seed=5)}
    assert rows["Identity"]["error_factor"] > 0.9
    assert rows["HB"]["error_factor"] > 0.7
    assert rows["Identity"]["reduced_domain"] < rows["Identity"]["original_domain"]


if __name__ == "__main__":
    main()
