"""Tables 2 and 3 — space usage and matvec time of core and composed matrices.

Tables 2 and 3 of the paper are analytic complexity tables; this benchmark
measures the quantities they bound: the memory footprint of each matrix
representation and the wall-clock time of a matrix-vector product, for the
core implicit matrices (Identity, Ones, Prefix, Suffix, Wavelet) and for the
composed census workload of Example 7.3 (Kron(Prefix, Prefix,
Union(Total, Identity, Dense))).

Paper claims reproduced: implicit matrices use O(1) state versus O(n^2) for
dense Prefix/Suffix/Wavelet, and the Example 7.3 workload needs a few hundred
bytes implicitly versus gigabytes dense.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.analysis import format_table
from repro.matrix import (
    DenseMatrix,
    HaarWavelet,
    Identity,
    Kronecker,
    Ones,
    Prefix,
    SparseMatrix,
    Suffix,
    Total,
    VStack,
)


def _approx_size_bytes(matrix) -> int:
    """Rough in-memory footprint of a matrix object."""
    if isinstance(matrix, DenseMatrix):
        return matrix.array.nbytes
    if isinstance(matrix, SparseMatrix):
        m = matrix.matrix
        return m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
    # Implicit matrices: object overhead only.
    return sys.getsizeof(matrix)


def core_matrix_rows(n: int = 2048):
    """(matrix, representation, bytes, matvec seconds) for each core matrix."""
    rng = np.random.default_rng(0)
    v = rng.normal(size=n)
    rows = []
    for name, implicit in [
        ("Identity", Identity(n)),
        ("Ones", Ones(n, n)),
        ("Prefix", Prefix(n)),
        ("Suffix", Suffix(n)),
        ("Wavelet", HaarWavelet(n)),
    ]:
        representations = {
            "implicit": implicit,
            "sparse": SparseMatrix(implicit.sparse()),
            "dense": DenseMatrix(implicit.dense()),
        }
        for repr_name, matrix in representations.items():
            start = time.perf_counter()
            for _ in range(5):
                matrix.matvec(v)
            elapsed = (time.perf_counter() - start) / 5
            rows.append((name, repr_name, _approx_size_bytes(matrix), elapsed))
    return rows


def example_73_workload(income_bins: int = 100, age_bins: int = 100, marital: int = 7):
    """The Example 7.3 census workload as an implicit matrix."""
    dense_part = DenseMatrix(
        np.array([[1, 1, 1, 0, 0, 0, 0], [0, 0, 0, 1, 1, 1, 1]], dtype=np.float64)[:, :marital]
    )
    last_factor = VStack([Total(marital), Identity(marital), dense_part])
    return Kronecker([Prefix(income_bins), Prefix(age_bins), last_factor])


def example_73_rows(income_bins: int = 100):
    w = example_73_workload(income_bins=income_bins, age_bins=income_bins)
    n = w.shape[1]
    rng = np.random.default_rng(1)
    v = rng.normal(size=n)
    start = time.perf_counter()
    w.matvec(v)
    implicit_time = time.perf_counter() - start
    implicit_bytes = _approx_size_bytes(w)
    dense_bytes_estimate = w.shape[0] * w.shape[1] * 8
    return [
        ("Example 7.3 workload", "implicit", implicit_bytes, implicit_time),
        ("Example 7.3 workload", "dense (estimated bytes)", dense_bytes_estimate, None),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the paper's 100x100x7 example and n=8192 cores")
    args = parser.parse_args()
    n = 8192 if args.full else 2048
    rows = core_matrix_rows(n) + example_73_rows(income_bins=100 if args.full else 30)
    print(f"\nTables 2/3 — matrix representations (core matrices at n={n})\n")
    print(
        format_table(
            ["matrix", "representation", "bytes", "matvec time (s)"],
            [[m, r, b, "-" if t is None else t] for m, r, b, t in rows],
        )
    )


# ----------------------------------------------------------------------------
# pytest-benchmark entry points.
# ----------------------------------------------------------------------------
def test_benchmark_prefix_implicit_matvec(benchmark):
    n = 2**16
    v = np.random.default_rng(0).normal(size=n)
    benchmark(Prefix(n).matvec, v)


def test_benchmark_prefix_dense_matvec(benchmark):
    n = 2048
    matrix = DenseMatrix(Prefix(n).dense())
    v = np.random.default_rng(0).normal(size=n)
    benchmark(matrix.matvec, v)


def test_benchmark_wavelet_implicit_matvec(benchmark):
    n = 2**16
    v = np.random.default_rng(0).normal(size=n)
    benchmark(HaarWavelet(n).matvec, v)


def test_benchmark_kron_census_workload_matvec(benchmark):
    w = example_73_workload(income_bins=50, age_bins=50)
    v = np.random.default_rng(0).normal(size=w.shape[1])
    benchmark(w.matvec, v)


def test_table2_shape_reproduces():
    """Implicit representations use orders of magnitude less memory than dense."""
    rows = core_matrix_rows(n=1024)
    sizes = {(name, repr_name): size for name, repr_name, size, _ in rows}
    assert sizes[("Prefix", "implicit")] * 100 < sizes[("Prefix", "dense")]
    assert sizes[("Wavelet", "implicit")] * 100 < sizes[("Wavelet", "dense")]


if __name__ == "__main__":
    main()
