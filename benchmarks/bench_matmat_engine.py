"""Benchmark of the vectorized block-matmat engine.

Measures, for structured matrices (Prefix, hierarchical VStack, Kronecker):

* ``dense()`` materialisation — the vectorized blocked-matmat path versus the
  seed's per-column baseline (``matmat(np.eye(n))`` with one interpreter-level
  matvec per column of the identity, the old generic fallback at
  ``matrix/base.py``);
* block products ``A @ B`` for multi-column ``B`` — matmat versus per-column;
* inference paths — multiplicative weights over a Kronecker marginal workload
  (blocked row pre-extraction versus one ``row(i)`` call per query per pass),
  and warm-cache normal-equations least squares versus per-request LSMR;
* sparse-aware Gram solves — ``build_normal_equations`` on a
  disjoint-partition (``ReductionMatrix``-derived) strategy with the sparse
  CSR Gram + sparse LU versus the dense blocked Gram + Cholesky.  Gated: the
  sparse path must stay >= ``--min-sparse-speedup`` faster.

Each run appends one trajectory point to ``BENCH_matmat.json`` at the repo
root, so perf changes across PRs are recorded.  The run fails (non-zero exit)
if the Kronecker dense-materialisation speedup at the largest measured domain
falls below ``--min-speedup``, which is how CI catches regressions of the
engine.

Usage::

    python benchmarks/bench_matmat_engine.py            # full sizes
    python benchmarks/bench_matmat_engine.py --quick    # CI smoke mode
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.matrix import (
    HierarchicalQueries,
    Identity,
    Kronecker,
    LinearQueryMatrix,
    Prefix,
    RangeQueries,
    ReductionMatrix,
    VStack,
    all_kway_marginals,
)
from repro.operators.inference import (
    build_normal_equations,
    least_squares,
    multiplicative_weights,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_matmat.json"

#: The gate family: the tensor-contraction kernel gives Kronecker matrices the
#: largest win, and multi-dimensional domains are where the paper's implicit
#: representation matters most.
GATE_FAMILY = "kronecker"


#: Factorisations used for the Kronecker family: three-way domains are the
#: representative multi-dimensional case (Example 7.3 of the paper).
_KRON_FACTORS = {256: (8, 8, 4), 1024: (16, 8, 8), 4096: (16, 16, 16), 16384: (32, 32, 16)}


def _build_family(family: str, n: int) -> LinearQueryMatrix:
    if family == "prefix":
        return Prefix(n)
    if family == "hierarchical":
        return HierarchicalQueries(n)
    if family == "kronecker":
        if n in _KRON_FACTORS:
            return Kronecker([Prefix(side) for side in _KRON_FACTORS[n]])
        side = int(round(np.sqrt(n)))
        return Kronecker([Prefix(side), Prefix(side)])
    raise ValueError(f"unknown matrix family {family!r}")


def _percol_matmat(matrix: LinearQueryMatrix, B: np.ndarray) -> np.ndarray:
    """The seed's generic matmat: one interpreter-level matvec per column."""
    out = np.empty((matrix.shape[0], B.shape[1]))
    for j in range(B.shape[1]):
        out[:, j] = matrix.matvec(B[:, j])
    return out


def _percol_dense(matrix: LinearQueryMatrix) -> np.ndarray:
    """The seed's dense(): the per-column loop over np.eye(n)."""
    return _percol_matmat(matrix, np.eye(matrix.shape[1]))


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_dense_materialisation(families, sizes, repeats):
    results = []
    for family in families:
        for n in sizes:
            matrix = _build_family(family, n)
            baseline = _time(lambda: _percol_dense(matrix), repeats)
            vectorized = _time(matrix.dense, repeats)
            # Guard correctness while we are here: both paths must agree.
            np.testing.assert_allclose(matrix.dense(), _percol_dense(matrix), atol=1e-9)
            results.append(
                {
                    "section": "dense",
                    "family": family,
                    "n": n,
                    "shape": list(matrix.shape),
                    "percol_seconds": baseline,
                    "matmat_seconds": vectorized,
                    "speedup": baseline / max(vectorized, 1e-12),
                }
            )
    return results


def bench_block_matmat(families, sizes, repeats, k=32):
    results = []
    rng = np.random.default_rng(0)
    for family in families:
        for n in sizes:
            matrix = _build_family(family, n)
            B = rng.normal(size=(matrix.shape[1], k))
            baseline = _time(lambda: _percol_matmat(matrix, B), repeats)
            vectorized = _time(lambda: matrix.matmat(B), repeats)
            results.append(
                {
                    "section": "block_matmat",
                    "family": family,
                    "n": n,
                    "k": k,
                    "percol_seconds": baseline,
                    "matmat_seconds": vectorized,
                    "speedup": baseline / max(vectorized, 1e-12),
                }
            )
    return results


def bench_inference(domain, repeats):
    rng = np.random.default_rng(1)
    # MW over all 2-way marginals of a multi-dimensional domain: the rows live
    # inside Kronecker factors, so per-row extraction is expensive while the
    # blocked rows() kernel is one tensor contraction per block.
    queries = all_kway_marginals(domain, 2)
    n = queries.shape[1]
    x_true = rng.integers(0, 50, size=n).astype(np.float64)
    answers = queries.matvec(x_true) + rng.normal(scale=1.0, size=queries.shape[0])
    total = float(x_true.sum())

    def mw_row_at_a_time(iterations=3):
        x_hat = np.full(n, total / n)
        for _ in range(iterations):
            for i in range(queries.shape[0]):
                row = queries.row(i)
                error = answers[i] - float(row @ x_hat)
                x_hat = x_hat * np.exp(row * error / (2.0 * total))
                x_hat *= total / x_hat.sum()
        return x_hat

    mw_old = _time(lambda: mw_row_at_a_time(), repeats)
    mw_new = _time(
        lambda: multiplicative_weights(queries, answers, total=total, iterations=3),
        repeats,
    )

    # Warm-cache normal equations on a tall-skinny random-range workload: the
    # Gram/Cholesky artifact is built once per strategy (and shareable through
    # the service ArtifactCache), so the per-request cost is one rmatvec plus a
    # triangular solve, versus hundreds of LSMR iterations per request.
    ls_n = 512
    pairs = rng.integers(0, ls_n, size=(16 * ls_n, 2))
    ls_queries = RangeQueries(ls_n, [(min(a, b), max(a, b)) for a, b in pairs])
    ls_answers = ls_queries.matvec(rng.normal(size=ls_n))
    warm_artifact = build_normal_equations(ls_queries)

    class _Warm:
        def get_or_build(self, key, builder):
            return warm_artifact

    ls_lsmr = _time(lambda: least_squares(ls_queries, ls_answers, method="lsmr"), repeats)
    ls_normal = _time(
        lambda: least_squares(
            ls_queries, ls_answers, method="normal", gram_cache=_Warm(), gram_key="warm"
        ),
        repeats,
    )
    return [
        {
            "section": "inference",
            "path": "multiplicative_weights",
            "n": n,
            "num_queries": queries.shape[0],
            "percol_seconds": mw_old,
            "matmat_seconds": mw_new,
            "speedup": mw_old / max(mw_new, 1e-12),
        },
        {
            "section": "inference",
            "path": "least_squares_warm_gram",
            "n": ls_n,
            "num_queries": ls_queries.shape[0],
            "lsmr_seconds": ls_lsmr,
            "normal_seconds": ls_normal,
            "speedup": ls_lsmr / max(ls_normal, 1e-12),
        },
    ]


def bench_partition_scatter(sizes, repeats, k: int = 64):
    """Grouped block sums: the cached-CSR product versus the old ``np.add.at``.

    ``ReductionMatrix._matmat`` (and the expansion-matrix ``_rmatmat``
    kernels) previously scattered rows with the unbuffered ``np.add.at``;
    they now route through a lazily cached CSR partition matrix, whose matmat
    kernel sums each group's rows in C (a sorted ``reduceat`` was measured
    too, but loses the random-gather copy of ``B`` at large domains).
    """
    results = []
    rng = np.random.default_rng(3)
    for n in sizes:
        reduction = ReductionMatrix(rng.integers(0, n // 8, size=n))
        B = rng.normal(size=(n, k))

        def add_at_baseline():
            out = np.zeros((reduction.num_groups, B.shape[1]))
            np.add.at(out, reduction.groups, B)
            return out

        np.testing.assert_allclose(reduction._matmat(B), add_at_baseline(), atol=1e-9)
        baseline = _time(add_at_baseline, repeats)
        vectorized = _time(lambda: reduction._matmat(B), repeats)
        results.append(
            {
                "section": "partition_matmat",
                "family": "reduction",
                "n": n,
                "k": k,
                "num_groups": reduction.num_groups,
                "add_at_seconds": baseline,
                "csr_seconds": vectorized,
                "speedup": baseline / max(vectorized, 1e-12),
            }
        )
    return results


def bench_sparse_gram(sizes, repeats, group_width: int = 8):
    """Sparse versus dense Gram solve on a disjoint-partition strategy.

    The strategy stacks a ``ReductionMatrix`` (contiguous groups of
    ``group_width`` cells) on an ``Identity``, so its Gram is block-diagonal
    with ~``group_width * n`` non-zeros — exactly the structure a dense
    ``(n, n)`` materialisation throws away.  Timed end-to-end: Gram
    construction + factorisation + one solve, i.e. the cold per-strategy cost
    a service pays the first time a tenant uses the strategy.
    """
    results = []
    rng = np.random.default_rng(2)
    for n in sizes:
        strategy = VStack([ReductionMatrix(np.arange(n) // group_width), Identity(n)])
        answers = strategy.matvec(rng.normal(size=n))
        rhs = strategy.rmatvec(answers)

        def solve(prefer):
            return build_normal_equations(strategy, prefer=prefer).solve(rhs)

        np.testing.assert_allclose(solve("sparse"), solve("dense"), atol=1e-6)
        dense_seconds = _time(lambda: solve("dense"), repeats)
        sparse_seconds = _time(lambda: solve("sparse"), repeats)
        gram = strategy.gram_sparse()
        results.append(
            {
                "section": "sparse_gram",
                "family": "disjoint_partition",
                "n": n,
                "num_queries": strategy.shape[0],
                "gram_nnz": int(gram.nnz),
                "gram_density": gram.nnz / float(n * n),
                "dense_seconds": dense_seconds,
                "sparse_seconds": sparse_seconds,
                "speedup": dense_seconds / max(sparse_seconds, 1e-12),
            }
        )
    return results


def record_trajectory(point: dict) -> None:
    """Append this run to the BENCH_matmat.json trajectory file."""
    if TRAJECTORY_PATH.exists():
        data = json.loads(TRAJECTORY_PATH.read_text())
    else:
        data = {"benchmark": "matmat_engine", "trajectory": []}
    data["trajectory"].append(point)
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode: fewer sizes/repeats")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail if the Kronecker dense speedup at the largest domain is below "
        "this (default: 10 full, 3 quick — CI hardware is noisy)",
    )
    parser.add_argument(
        "--min-sparse-speedup",
        type=float,
        default=3.0,
        help="fail if the sparse-Gram solve speedup on the disjoint-partition "
        "strategy falls below this (default: 3)",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="skip appending to BENCH_matmat.json"
    )
    args = parser.parse_args()

    if args.quick:
        dense_sizes, block_sizes, mw_domain, repeats = [4096], [4096], (8, 8, 4), 1
    else:
        dense_sizes, block_sizes, mw_domain, repeats = (
            [1024, 4096],
            [1024, 4096, 16384],
            (16, 16, 4),
            3,
        )
    # One size in both modes: the dense baseline is an O(n^3) Cholesky, so a
    # single n >= 4096 point is enough to expose the gap without stalling CI.
    sparse_gram_sizes = [4096]
    min_speedup = args.min_speedup if args.min_speedup is not None else (3.0 if args.quick else 10.0)

    families = ["prefix", "hierarchical", "kronecker"]
    results = bench_dense_materialisation(families, dense_sizes, repeats)
    results += bench_block_matmat(families, block_sizes, repeats)
    results += bench_inference(mw_domain, repeats)
    results += bench_partition_scatter(block_sizes, repeats)
    results += bench_sparse_gram(sparse_gram_sizes, repeats)

    print(f"\nVectorized block-matmat engine ({'quick' if args.quick else 'full'} mode)\n")
    for r in results:
        label = f"{r['section']}/{r.get('family', r.get('path'))} n={r['n']}"
        print(f"  {label:52s} speedup {r['speedup']:8.1f}x")

    largest = max(dense_sizes)
    gate = next(
        r for r in results
        if r["section"] == "dense" and r["family"] == GATE_FAMILY and r["n"] == largest
    )
    print(
        f"\nGate: {GATE_FAMILY} dense() at n={largest}: {gate['speedup']:.1f}x "
        f"(threshold {min_speedup:.1f}x)"
    )
    sparse_gate = next(
        r
        for r in results
        if r["section"] == "sparse_gram" and r["n"] == max(sparse_gram_sizes)
    )
    print(
        f"Gate: sparse-Gram solve at n={sparse_gate['n']}: "
        f"{sparse_gate['speedup']:.1f}x (threshold {args.min_sparse_speedup:.1f}x)"
    )

    if not args.no_record:
        record_trajectory(
            {
                "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "mode": "quick" if args.quick else "full",
                "results": results,
            }
        )
        print(f"Trajectory point appended to {TRAJECTORY_PATH.name}")

    if gate["speedup"] < min_speedup:
        print("FAIL: vectorized engine regression", file=sys.stderr)
        return 1
    if sparse_gate["speedup"] < args.min_sparse_speedup:
        print("FAIL: sparse-Gram engine regression", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
