"""Ablation — inference operators compared on identical measurements.

DESIGN.md calls out the inference operator as a key design choice: EKTELO's
claim is that a single generic, iterative inference engine (least squares /
NNLS on implicit matrices) can replace the custom routines of prior work
without losing accuracy.  This ablation measures, on the same set of noisy
hierarchical measurements:

* ordinary least squares (iterative LSMR),
* non-negative least squares (L-BFGS-B),
* NNLS with a known total,
* multiplicative weights,
* tree-based least squares (the specialised Hay et al. routine),
* thresholded identity (no joint inference at all),

reporting scaled per-query L2 error on a random range workload and runtime.
This is not a table in the paper, but it isolates the "inference: impact on
accuracy" discussion of Sec. 5.5.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis import format_table, per_query_l2_error
from repro.dataset import load_1d
from repro.matrix import HierarchicalQueries
from repro.operators.inference import (
    hierarchical_measurements,
    least_squares,
    multiplicative_weights,
    nnls,
    nnls_with_total,
    threshold,
    tree_based_least_squares,
)
from repro.workload import random_range_workload


def run_experiment(
    n: int = 1024, epsilon: float = 0.1, scale: int = 500_000, dataset: str = "PIECEWISE", seed: int = 0
):
    """Return rows (method, error, runtime) on a shared measurement set."""
    rng = np.random.default_rng(seed)
    x = load_1d(dataset, n=n, scale=scale)
    workload = random_range_workload(n, 200, seed=seed)
    measurements = HierarchicalQueries(n, branching=2)
    noise_scale = measurements.sensitivity() / epsilon
    answers = measurements.matvec(x) + rng.laplace(0, noise_scale, measurements.shape[0])

    total = float(x.sum())
    methods = {
        "LS (LSMR)": lambda: least_squares(measurements, answers).x_hat,
        "NNLS": lambda: nnls(measurements, answers).x_hat,
        "NNLS + known total": lambda: nnls_with_total(measurements, answers, total=total).x_hat,
        "Multiplicative weights": lambda: multiplicative_weights(
            measurements, answers, total=total, iterations=10
        ).x_hat,
        "Tree-based LS": lambda: _tree_based(x, n, epsilon, seed),
        "Identity rows + threshold": lambda: threshold(
            answers[:n], noise_scale=noise_scale
        ).x_hat,
    }

    rows = []
    for name, run in methods.items():
        start = time.perf_counter()
        estimate = run()
        runtime = time.perf_counter() - start
        error = per_query_l2_error(workload, x, estimate)
        rows.append((name, error, runtime))
    return rows


def _tree_based(x: np.ndarray, n: int, epsilon: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    intervals = hierarchical_measurements(x, branching=2)
    noise_scale = (1 + np.ceil(np.log2(n))) / epsilon
    noisy = {
        (lo, hi): float(x[lo : hi + 1].sum() + rng.laplace(0, noise_scale)) for lo, hi in intervals
    }
    return tree_based_least_squares(noisy, n, branching=2).x_hat


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domain", type=int, default=1024)
    parser.add_argument("--epsilon", type=float, default=0.1)
    args = parser.parse_args()
    rows = run_experiment(n=args.domain, epsilon=args.epsilon)
    print("\nAblation — inference operators on identical hierarchical measurements\n")
    print(format_table(["inference", "per-query L2 error", "runtime (s)"], rows))


# ----------------------------------------------------------------------------
# pytest-benchmark entry points.
# ----------------------------------------------------------------------------
def _prepared(n=2048, epsilon=0.1, seed=0):
    rng = np.random.default_rng(seed)
    x = load_1d("PIECEWISE", n=n, scale=500_000)
    measurements = HierarchicalQueries(n, branching=2)
    noise_scale = measurements.sensitivity() / epsilon
    answers = measurements.matvec(x) + rng.laplace(0, noise_scale, measurements.shape[0])
    return x, measurements, answers


def test_benchmark_ablation_ls(benchmark):
    _, measurements, answers = _prepared()
    benchmark(least_squares, measurements, answers)


def test_benchmark_ablation_nnls(benchmark):
    _, measurements, answers = _prepared()
    benchmark(nnls, measurements, answers)


def test_benchmark_ablation_mw(benchmark):
    x, measurements, answers = _prepared()
    benchmark(multiplicative_weights, measurements, answers, float(x.sum()), None, 5)


def test_ablation_shape():
    """Joint inference (LS/NNLS) beats no-inference thresholding on range queries."""
    rows = {name: error for name, error, _ in run_experiment(n=512, epsilon=0.1, seed=2)}
    assert rows["LS (LSMR)"] < rows["Identity rows + threshold"]
    assert rows["NNLS + known total"] <= rows["LS (LSMR)"] * 1.5


if __name__ == "__main__":
    main()
