"""Fig. 5 — inference scalability: LS / NNLS runtime vs data-vector size.

Paper setting: hierarchical (H2) measurements over 1-D domains from 10^3 up to
10^9 cells; compared configurations are

    LS   dense + direct        LS   dense + iterative
    LS   sparse + iterative    LS   implicit + iterative
    NNLS dense + iterative     NNLS sparse + iterative
    NNLS implicit + iterative  LS   tree-based (Hay et al.)

Paper result: iterative + sparse/implicit representations scale to data
vectors ~1000x larger than direct/dense approaches within the same time
budget, and the generic implicit LS scales beyond the specialised tree-based
method.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis import format_table
from repro.matrix import HierarchicalQueries
from repro.operators.inference import (
    hierarchical_measurements,
    least_squares,
    nnls,
    tree_based_least_squares,
)
from repro.plans.base import with_representation

CONFIGS = [
    ("LS", "dense", "direct"),
    ("LS", "dense", "iterative"),
    ("LS", "sparse", "iterative"),
    ("LS", "implicit", "iterative"),
    ("NNLS", "dense", "iterative"),
    ("NNLS", "sparse", "iterative"),
    ("NNLS", "implicit", "iterative"),
    ("LS", "tree-based", "-"),
]

#: Representation/method combinations are skipped above these sizes so the
#: harness finishes; mirrors the paper's per-curve cutoff points (dense
#: representations of the hierarchical measurement matrix hit memory limits
#: first, direct solvers hit cubic runtime next, exactly as in Fig. 5).
SKIP_ABOVE = {
    ("LS", "dense", "direct"): 4096,
    ("LS", "dense", "iterative"): 4096,
    ("NNLS", "dense", "iterative"): 4096,
    ("LS", "sparse", "iterative"): 2**20,
    ("NNLS", "sparse", "iterative"): 2**18,
    ("NNLS", "implicit", "iterative"): 2**20,
}


def _measurements_and_answers(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 100, size=n).astype(np.float64)
    matrix = HierarchicalQueries(n, branching=2)
    answers = matrix.matvec(x) + rng.laplace(0, 10.0, matrix.shape[0])
    return x, matrix, answers


def run_one(config, n: int, seed: int = 0) -> float | None:
    """Runtime in seconds of one inference configuration, or None if skipped."""
    method, representation, solver = config
    if SKIP_ABOVE.get(config) and n > SKIP_ABOVE[config]:
        return None
    x, matrix, answers = _measurements_and_answers(n, seed)
    start = time.perf_counter()
    if representation == "tree-based":
        intervals = hierarchical_measurements(x, branching=2)
        rng = np.random.default_rng(seed)
        noisy = {
            (lo, hi): float(x[lo : hi + 1].sum() + rng.laplace(0, 10.0)) for lo, hi in intervals
        }
        tree_based_least_squares(noisy, n, branching=2)
        return time.perf_counter() - start
    materialised = with_representation(matrix, representation)
    if method == "LS":
        least_squares(materialised, answers, method="direct" if solver == "direct" else "lsmr")
    else:
        nnls(materialised, answers)
    return time.perf_counter() - start


def run_experiment(domain_sizes=(2**10, 2**12, 2**14), seed: int = 0):
    rows = []
    for n in domain_sizes:
        for config in CONFIGS:
            elapsed = run_one(config, n, seed=seed)
            rows.append((" ".join(config), n, elapsed))
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="extend the sweep to 2^22 cells")
    args = parser.parse_args()
    sizes = (2**10, 2**12, 2**14, 2**16, 2**18) if args.full else (2**10, 2**12, 2**14)
    rows = run_experiment(domain_sizes=sizes)
    print("\nFig. 5 — inference runtime (s) vs data-vector size\n")
    print(
        format_table(
            ["configuration", "domain size", "runtime (s)"],
            [[c, n, "skipped" if t is None else t] for c, n, t in rows],
        )
    )


# ----------------------------------------------------------------------------
# pytest-benchmark entry points.
# ----------------------------------------------------------------------------
def test_benchmark_ls_implicit_iterative(benchmark):
    benchmark(run_one, ("LS", "implicit", "iterative"), 4096)


def test_benchmark_ls_sparse_iterative(benchmark):
    benchmark(run_one, ("LS", "sparse", "iterative"), 4096)


def test_benchmark_ls_dense_direct(benchmark):
    benchmark(run_one, ("LS", "dense", "direct"), 1024)


def test_benchmark_nnls_implicit_iterative(benchmark):
    benchmark(run_one, ("NNLS", "implicit", "iterative"), 4096)


def test_benchmark_tree_based(benchmark):
    benchmark(run_one, ("LS", "tree-based", "-"), 4096)


def test_fig5_shape_reproduces():
    """Implicit iterative LS is much faster than dense direct LS at 4096 cells."""
    direct = run_one(("LS", "dense", "direct"), 4096)
    implicit = run_one(("LS", "implicit", "iterative"), 4096)
    assert implicit is not None and direct is not None
    assert implicit < direct


if __name__ == "__main__":
    main()
