"""Table 5 — Census case study: scaled per-query L2 error on three workloads.

Paper setting: the March 2000 CPS data (here: the seeded synthetic stand-in)
vectorised over a 1,400,000-cell domain, epsilon = 1.0 (the paper does not
state it explicitly; the ordering of methods is what matters).  Workloads:

* Identity      — all cell counts (error scale 1e-9 in the paper),
* 2-way Marg.   — all two-way marginals (1e-7),
* Prefix(Income)— income prefixes crossed with (any | value) of the other
  attributes (1e-7).

Algorithms compared: Identity, PrivBayes, PrivBayesLS, HB-Striped,
DAWA-Striped.  Paper result: DAWA-Striped wins every workload; PrivBayes is
worse than Identity; PrivBayesLS improves PrivBayes on Identity / marginals.

The default run shrinks income to 100 bins (domain 28,000 cells) so it
finishes in seconds; ``--full`` uses the paper's 5000-bin income (1.4M cells).
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis import format_table, per_query_l2_error
from repro.dataset import synthetic_cps
from repro.plans import (
    DawaStripedPlan,
    HbStripedKronPlan,
    HbStripedPlan,
    IdentityPlan,
    PrivBayesLsPlan,
    PrivBayesPlan,
)
from repro.private import protect
from repro.workload import (
    census_prefix_income_workload,
    identity_workload,
    two_way_marginals_workload,
)


def census_workloads(domain):
    """The three Table 5 workloads over the census domain."""
    return {
        "Identity": identity_workload(domain),
        "2-way Marg.": two_way_marginals_workload(domain),
        "Prefix(Income)": census_prefix_income_workload(domain, income_axis=0),
    }


def algorithms(domain):
    """The Table 5 rows (algorithm name → plan instance)."""
    return {
        "Identity": IdentityPlan(),
        "PrivBayes": PrivBayesPlan(domain, seed=0),
        "PrivBayesLS": PrivBayesLsPlan(domain, seed=0),
        "HB-Striped": HbStripedKronPlan(domain, stripe_axis=0),
        "DAWA-Striped": DawaStripedPlan(domain, stripe_axis=0),
    }


def run_experiment(
    income_bins: int = 100,
    num_records: int = 49_436,
    epsilon: float = 0.1,
    trials: int = 1,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Return error[algorithm][workload], averaged over trials."""
    relation = synthetic_cps(num_records=num_records, income_bins=income_bins, seed=2000)
    domain = relation.schema.domain
    x_true = relation.vectorize()
    workloads = census_workloads(domain)

    results: dict[str, dict[str, list[float]]] = {}
    for trial in range(trials):
        for algo_name, plan in algorithms(domain).items():
            source = protect(relation, epsilon, seed=seed + trial).vectorize()
            start = time.perf_counter()
            result = plan.run(source, epsilon)
            elapsed = time.perf_counter() - start
            for workload_name, workload in workloads.items():
                error = per_query_l2_error(workload, x_true, result.x_hat)
                results.setdefault(algo_name, {}).setdefault(workload_name, []).append(error)
            results[algo_name].setdefault("_runtime", []).append(elapsed)

    return {
        algo: {key: float(np.mean(values)) for key, values in per_workload.items()}
        for algo, per_workload in results.items()
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale 1.4M-cell domain (slow)")
    parser.add_argument("--trials", type=int, default=1)
    args = parser.parse_args()
    income_bins = 5000 if args.full else 100
    table = run_experiment(income_bins=income_bins, trials=args.trials)
    workload_names = ["Identity", "2-way Marg.", "Prefix(Income)"]
    rows = [
        [algo] + [table[algo][w] for w in workload_names] + [table[algo]["_runtime"]]
        for algo in table
    ]
    print("\nTable 5 — Census case study (scaled per-query L2 error; lower is better)\n")
    print(format_table(["algorithm", *workload_names, "runtime (s)"], rows))


# ----------------------------------------------------------------------------
# pytest-benchmark entry points.
# ----------------------------------------------------------------------------
def _small_relation():
    return synthetic_cps(num_records=8000, income_bins=50, seed=2000)


def test_benchmark_dawa_striped_census(benchmark):
    relation = _small_relation()
    domain = relation.schema.domain

    def run():
        source = protect(relation, 1.0, seed=0).vectorize()
        return DawaStripedPlan(domain, stripe_axis=0).run(source, 1.0)

    benchmark(run)


def test_benchmark_hb_striped_kron_census(benchmark):
    relation = _small_relation()
    domain = relation.schema.domain

    def run():
        source = protect(relation, 1.0, seed=0).vectorize()
        return HbStripedKronPlan(domain, stripe_axis=0).run(source, 1.0)

    benchmark(run)


def test_benchmark_privbayes_ls_census(benchmark):
    relation = _small_relation()
    domain = relation.schema.domain

    def run():
        source = protect(relation, 1.0, seed=0).vectorize()
        return PrivBayesLsPlan(domain, seed=0).run(source, 1.0)

    benchmark(run)


def test_table5_shape_reproduces():
    """Qualitative Table 5 claim: DAWA-Striped beats Identity and PrivBayes.

    The paper's regime (1.4M cells) makes per-cell Laplace noise dominate; the
    scaled-down test uses a smaller budget to stay in the same noise-dominated
    regime.
    """
    table = run_experiment(income_bins=50, num_records=8000, epsilon=0.05, trials=1, seed=3)
    for workload in ["Identity", "2-way Marg.", "Prefix(Income)"]:
        # DAWA-Striped beats the data-independent Identity baseline everywhere.
        assert table["DAWA-Striped"][workload] <= table["Identity"][workload] * 1.5
    # The striped plans also beat PrivBayes on the marginal and prefix
    # workloads; PrivBayes is unrealistically strong on the *synthetic* census
    # (its Bayes-net model matches the generator), so the Identity-workload
    # comparison from the paper is not asserted here (see EXPERIMENTS.md).
    assert table["DAWA-Striped"]["2-way Marg."] <= table["PrivBayes"]["2-way Marg."] * 2.0
    assert table["DAWA-Striped"]["Prefix(Income)"] <= table["PrivBayes"]["Prefix(Income)"] * 2.0


if __name__ == "__main__":
    main()
