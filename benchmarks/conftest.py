"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md, "Per-experiment index").  Every module can be used
two ways:

* ``pytest benchmarks/ --benchmark-only`` — runs scaled-down pytest-benchmark
  timings so the whole harness finishes in minutes;
* ``python benchmarks/bench_<experiment>.py [--full]`` — prints the table /
  series the paper reports (``--full`` uses the paper-scale parameters).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import Attribute, Relation, Schema
from repro.private import protect


def vector_relation(values: np.ndarray, name: str = "v") -> Relation:
    """Wrap a histogram as a one-attribute relation."""
    schema = Schema.build([Attribute(name, len(values))])
    return Relation.from_histogram(schema, np.asarray(values, dtype=np.float64))


def vector_source(values: np.ndarray, epsilon: float = 1.0, seed: int = 0):
    """Protected vector source around a histogram."""
    return protect(vector_relation(values), epsilon, seed=seed).vectorize()


@pytest.fixture
def make_vector_source():
    return vector_source
