"""Benchmark of the telemetry subsystem: disabled overhead and tracing cost.

Three sections:

* ``noop_overhead`` — cost of one instrumented seam when no tracer is active
  (the ``trace_span`` thread-local read returning the shared no-op handle),
  scaled by the spans-per-request count of a real traced request to a
  per-request overhead fraction against measured service latency.
  **Gated**: the fraction must stay below ``--max-disabled-overhead``
  (default 2% full mode — instrumentation left in place must be free for
  deployments that never opt in).
* ``service_throughput`` — requests/second through the
  :class:`~repro.service.PlanScheduler` with tracing disabled vs enabled
  (same sessions, fresh uncached requests), and the enabled/disabled ratio.
  Enabled tracing is allowed to cost — it buys a full span tree per request —
  but the number is recorded so the trajectory catches regressions.
* ``exporter_throughput`` — spans/second through the JSON-lines and Chrome
  trace-event serialisers over a realistic span population.

Each run appends one trajectory point to ``BENCH_telemetry.json`` at the
repo root.  CI runs ``--quick`` mode with loose floors so slow runners do
not flake.

Usage::

    python benchmarks/bench_telemetry.py            # full sizes
    python benchmarks/bench_telemetry.py --quick    # CI smoke mode
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.dataset import Attribute, Relation, Schema
from repro.service import PlanScheduler, QueryRequest, SessionManager
from repro.telemetry import Tracer, spans_to_chrome_trace, spans_to_jsonlines, trace_span

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_telemetry.json"

DOMAIN = 64


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _relation() -> Relation:
    rng = np.random.default_rng(0)
    schema = Schema.build([Attribute("v", DOMAIN)])
    return Relation.from_histogram(schema, rng.integers(0, 50, size=DOMAIN))


def _scheduler(tracer: Tracer | None, num_requests: int):
    manager = SessionManager()
    session = manager.create_session(
        "bench", _relation(), epsilon_total=num_requests * 0.2, seed=0
    )
    scheduler = (
        PlanScheduler(manager, tracer=tracer) if tracer is not None else PlanScheduler(manager)
    )
    return scheduler, session


def _request(session, index: int) -> QueryRequest:
    # Distinct epsilons keep every request a genuine cache miss.
    return QueryRequest(
        session.session_id,
        plan="Identity",
        epsilon=0.1 + index * 1e-6,
        workload="prefix",
        workload_params={"n": DOMAIN},
        reuse=False,
    )


def _run_requests(scheduler, session, num_requests: int) -> None:
    for index in range(num_requests):
        scheduler.execute(_request(session, index))


def bench_service_throughput(num_requests: int, repeats: int) -> list[dict]:
    """Requests/second with tracing disabled vs enabled (fresh state per run)."""
    results = []
    for mode, tracer_factory in (("disabled", lambda: None), ("enabled", Tracer)):
        def run():
            scheduler, session = _scheduler(tracer_factory(), num_requests)
            _run_requests(scheduler, session, num_requests)

        seconds = _time(run, repeats)
        results.append(
            {
                "section": "service_throughput",
                "tracing": mode,
                "num_requests": num_requests,
                "seconds": seconds,
                "requests_per_second": num_requests / max(seconds, 1e-12),
            }
        )
    disabled, enabled = results
    disabled["enabled_over_disabled"] = enabled["enabled_over_disabled"] = (
        disabled["seconds"] / max(enabled["seconds"], 1e-12)
    )
    return results


def bench_noop_overhead(service_results: list[dict], calls: int, repeats: int) -> dict:
    """Per-request cost of dormant instrumentation, as a latency fraction."""

    def burst():
        for _ in range(calls):
            with trace_span("bench.seam", a=1):
                pass

    seconds_per_call = _time(burst, repeats) / calls

    # Spans a real request produces when tracing IS on — that many dormant
    # seams fire on the disabled path too.
    tracer = Tracer()
    scheduler, session = _scheduler(tracer, num_requests=4)
    response = scheduler.execute(_request(session, 0))
    spans_per_request = len(tracer.trace(response.trace_id))

    disabled = next(
        r for r in service_results if r["section"] == "service_throughput" and r["tracing"] == "disabled"
    )
    request_seconds = disabled["seconds"] / disabled["num_requests"]
    overhead_fraction = seconds_per_call * spans_per_request / max(request_seconds, 1e-12)
    return {
        "section": "noop_overhead",
        "seconds_per_seam": seconds_per_call,
        "spans_per_request": spans_per_request,
        "request_seconds_disabled": request_seconds,
        "overhead_fraction": overhead_fraction,
    }


def bench_exporters(num_spans: int, repeats: int) -> list[dict]:
    """Serialisation throughput over a realistic traced-service population."""
    tracer = Tracer()
    scheduler, session = _scheduler(tracer, num_requests=num_spans)
    index = 0
    while len(tracer) < num_spans:
        scheduler.execute(_request(session, index))
        index += 1
    spans = tracer.spans()[:num_spans]
    results = []
    for name, export in (
        ("jsonlines", spans_to_jsonlines),
        ("chrome_trace", lambda s: json.dumps(spans_to_chrome_trace(s))),
    ):
        seconds = _time(lambda: export(spans), repeats)
        results.append(
            {
                "section": "exporter_throughput",
                "exporter": name,
                "num_spans": len(spans),
                "seconds": seconds,
                "spans_per_second": len(spans) / max(seconds, 1e-12),
            }
        )
    return results


def record_trajectory(point: dict) -> None:
    """Append this run to the BENCH_telemetry.json trajectory file."""
    if TRAJECTORY_PATH.exists():
        data = json.loads(TRAJECTORY_PATH.read_text())
    else:
        data = {"benchmark": "telemetry", "trajectory": []}
    data["trajectory"].append(point)
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode: fewer sizes/repeats")
    parser.add_argument(
        "--max-disabled-overhead",
        type=float,
        default=None,
        help="fail if dormant instrumentation costs more than this fraction "
        "of per-request latency (default: 0.02 full, 0.15 quick — CI "
        "hardware is noisy)",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="skip appending to BENCH_telemetry.json"
    )
    args = parser.parse_args()

    if args.quick:
        repeats = 1
        num_requests = 60
        noop_calls = 20_000
        num_spans = 200
    else:
        repeats = 3
        num_requests = 300
        noop_calls = 200_000
        num_spans = 1000

    max_overhead = args.max_disabled_overhead if args.max_disabled_overhead is not None else (
        0.15 if args.quick else 0.02
    )

    results = bench_service_throughput(num_requests, repeats)
    noop = bench_noop_overhead(results, noop_calls, repeats)
    results.append(noop)
    results += bench_exporters(num_spans, repeats)

    print(f"\nTelemetry benchmark ({'quick' if args.quick else 'full'} mode)\n")
    for r in results:
        if r["section"] == "service_throughput":
            print(
                f"  service_throughput tracing={r['tracing']:8s} "
                f"{r['requests_per_second']:10.0f} req/s over {r['num_requests']}"
            )
        elif r["section"] == "noop_overhead":
            print(
                f"  noop_overhead {r['seconds_per_seam'] * 1e9:8.0f} ns/seam x "
                f"{r['spans_per_request']} seams/request = "
                f"{r['overhead_fraction'] * 100:.3f}% of request latency"
            )
        else:
            print(
                f"  exporter_throughput {r['exporter']:12s} "
                f"{r['spans_per_second']:10.0f} spans/s over {r['num_spans']}"
            )

    print(
        f"\nGate: disabled-instrumentation overhead "
        f"{noop['overhead_fraction'] * 100:.3f}% (threshold {max_overhead * 100:.1f}%)"
    )

    if not args.no_record:
        record_trajectory(
            {
                "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "mode": "quick" if args.quick else "full",
                "results": results,
            }
        )
        print(f"Trajectory point appended to {TRAJECTORY_PATH.name}")

    if noop["overhead_fraction"] > max_overhead:
        print("FAIL: dormant telemetry instrumentation is no longer free", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
