"""Benchmark of the telemetry subsystem: disabled overhead and tracing cost.

Three sections:

* ``noop_overhead`` — cost of one instrumented seam when no tracer is active
  (the ``trace_span`` thread-local read returning the shared no-op handle),
  scaled by the spans-per-request count of a real traced request to a
  per-request overhead fraction against measured service latency.
  **Gated**: the fraction must stay below ``--max-disabled-overhead``
  (default 2% full mode — instrumentation left in place must be free for
  deployments that never opt in).
* ``service_throughput`` — requests/second through the
  :class:`~repro.service.PlanScheduler` with tracing disabled vs enabled
  (same sessions, fresh uncached requests), and the enabled/disabled ratio.
  Enabled tracing is allowed to cost — it buys a full span tree per request —
  but the number is recorded so the trajectory catches regressions.
* ``exporter_throughput`` — spans/second through the JSON-lines and Chrome
  trace-event serialisers over a realistic span population.
* ``distributed_overhead`` — process-backend requests/second with tracing
  disabled vs enabled.  The enabled path ships a ``TraceContext`` to the
  worker, records spans on a private tracer there, pickles them home and
  adopts them into the live trace (plus the worker metrics merge).
  **Gated**: that whole round trip must cost no more than
  ``--max-adoption-overhead`` of process-backend request latency (default 5%
  full mode — distributed tracing must be cheap next to the IPC it rides).
* ``slo_throughput`` — :meth:`SloEngine.evaluate` calls/second over a
  populated registry (latency + availability + privacy-burn objectives),
  so the trajectory catches the alert path getting expensive.

Each run appends one trajectory point to ``BENCH_telemetry.json`` at the
repo root.  CI runs ``--quick`` mode with loose floors so slow runners do
not flake.

Usage::

    python benchmarks/bench_telemetry.py            # full sizes
    python benchmarks/bench_telemetry.py --quick    # CI smoke mode
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.dataset import Attribute, Relation, Schema
from repro.service import PlanScheduler, ProcessExecutor, QueryRequest, SessionManager
from repro.telemetry import (
    MetricsRegistry,
    SloEngine,
    SloSpec,
    Tracer,
    default_slos,
    spans_to_chrome_trace,
    spans_to_jsonlines,
    trace_span,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_telemetry.json"

DOMAIN = 64


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _relation() -> Relation:
    rng = np.random.default_rng(0)
    schema = Schema.build([Attribute("v", DOMAIN)])
    return Relation.from_histogram(schema, rng.integers(0, 50, size=DOMAIN))


def _scheduler(tracer: Tracer | None, num_requests: int):
    manager = SessionManager()
    session = manager.create_session(
        "bench", _relation(), epsilon_total=num_requests * 0.2, seed=0
    )
    scheduler = (
        PlanScheduler(manager, tracer=tracer) if tracer is not None else PlanScheduler(manager)
    )
    return scheduler, session


def _request(session, index: int) -> QueryRequest:
    # Distinct epsilons keep every request a genuine cache miss.
    return QueryRequest(
        session.session_id,
        plan="Identity",
        epsilon=0.1 + index * 1e-6,
        workload="prefix",
        workload_params={"n": DOMAIN},
        reuse=False,
    )


def _run_requests(scheduler, session, num_requests: int) -> None:
    for index in range(num_requests):
        scheduler.execute(_request(session, index))


def bench_service_throughput(num_requests: int, repeats: int) -> list[dict]:
    """Requests/second with tracing disabled vs enabled (fresh state per run)."""
    results = []
    for mode, tracer_factory in (("disabled", lambda: None), ("enabled", Tracer)):
        def run():
            scheduler, session = _scheduler(tracer_factory(), num_requests)
            _run_requests(scheduler, session, num_requests)

        seconds = _time(run, repeats)
        results.append(
            {
                "section": "service_throughput",
                "tracing": mode,
                "num_requests": num_requests,
                "seconds": seconds,
                "requests_per_second": num_requests / max(seconds, 1e-12),
            }
        )
    disabled, enabled = results
    disabled["enabled_over_disabled"] = enabled["enabled_over_disabled"] = (
        disabled["seconds"] / max(enabled["seconds"], 1e-12)
    )
    return results


def bench_noop_overhead(service_results: list[dict], calls: int, repeats: int) -> dict:
    """Per-request cost of dormant instrumentation, as a latency fraction."""

    def burst():
        for _ in range(calls):
            with trace_span("bench.seam", a=1):
                pass

    seconds_per_call = _time(burst, repeats) / calls

    # Spans a real request produces when tracing IS on — that many dormant
    # seams fire on the disabled path too.
    tracer = Tracer()
    scheduler, session = _scheduler(tracer, num_requests=4)
    response = scheduler.execute(_request(session, 0))
    spans_per_request = len(tracer.trace(response.trace_id))

    disabled = next(
        r for r in service_results if r["section"] == "service_throughput" and r["tracing"] == "disabled"
    )
    request_seconds = disabled["seconds"] / disabled["num_requests"]
    overhead_fraction = seconds_per_call * spans_per_request / max(request_seconds, 1e-12)
    return {
        "section": "noop_overhead",
        "seconds_per_seam": seconds_per_call,
        "spans_per_request": spans_per_request,
        "request_seconds_disabled": request_seconds,
        "overhead_fraction": overhead_fraction,
    }


def bench_exporters(num_spans: int, repeats: int) -> list[dict]:
    """Serialisation throughput over a realistic traced-service population."""
    tracer = Tracer()
    scheduler, session = _scheduler(tracer, num_requests=num_spans)
    index = 0
    while len(tracer) < num_spans:
        scheduler.execute(_request(session, index))
        index += 1
    spans = tracer.spans()[:num_spans]
    results = []
    for name, export in (
        ("jsonlines", spans_to_jsonlines),
        ("chrome_trace", lambda s: json.dumps(spans_to_chrome_trace(s))),
    ):
        seconds = _time(lambda: export(spans), repeats)
        results.append(
            {
                "section": "exporter_throughput",
                "exporter": name,
                "num_spans": len(spans),
                "seconds": seconds,
                "spans_per_second": len(spans) / max(seconds, 1e-12),
            }
        )
    return results


#: Domain size for the distributed section.  Remote plans exist for work
#: heavy enough to justify a process round trip, so the adoption-overhead
#: gate is judged against that latency — not a sub-millisecond toy domain.
REMOTE_DOMAIN = 1024


def _remote_relation() -> Relation:
    rng = np.random.default_rng(0)
    schema = Schema.build([Attribute("v", REMOTE_DOMAIN)])
    return Relation.from_histogram(schema, rng.integers(0, 50, size=REMOTE_DOMAIN))


def _remote_request(session, index: int) -> QueryRequest:
    # DAWA is the representative remote plan.
    return QueryRequest(
        session.session_id,
        plan="DAWA",
        epsilon=0.1 + index * 1e-6,
        workload="prefix",
        workload_params={"n": REMOTE_DOMAIN},
        reuse=False,
    )


def bench_distributed_overhead(num_requests: int, repeats: int) -> list[dict]:
    """Cost of trace propagation + span adoption on the process backend.

    Two schedulers — one traced, one not — share one warm worker pool and
    answer the same DAWA request stream *interleaved request by request*,
    so machine drift (frequency scaling, pool state) hits both modes
    equally; per-mode medians then isolate the observability round trip —
    the context pickled out, worker spans pickled back, adoption and the
    metrics merge.
    """
    executor = ProcessExecutor(max_workers=2)
    num_requests = num_requests * repeats
    relation = _remote_relation()
    try:
        budget = (num_requests + 4) * 0.2
        manager = SessionManager()
        session_off = manager.create_session("bench", relation, budget, seed=0)
        session_on = manager.create_session("bench", relation, budget, seed=0)
        scheduler_off = PlanScheduler(manager, executor=executor)
        scheduler_on = PlanScheduler(manager, tracer=Tracer(), executor=executor)
        # Warm the pool (forkserver spawn + first-job imports) before timing.
        for index in range(2):
            scheduler_off.execute(_remote_request(session_off, num_requests + index))
            scheduler_on.execute(_remote_request(session_on, num_requests + index))
        samples_off: list[float] = []
        samples_on: list[float] = []
        for index in range(num_requests):
            start = time.perf_counter()
            scheduler_off.execute(_remote_request(session_off, index))
            mid = time.perf_counter()
            scheduler_on.execute(_remote_request(session_on, index))
            samples_off.append(mid - start)
            samples_on.append(time.perf_counter() - mid)
    finally:
        executor.shutdown()

    def median(samples: list[float]) -> float:
        ordered = sorted(samples)
        return ordered[len(ordered) // 2]

    disabled, enabled = median(samples_off), median(samples_on)
    fraction = max(0.0, enabled / max(disabled, 1e-12) - 1.0)
    return [
        {
            "section": "distributed_overhead",
            "tracing": mode,
            "num_requests": num_requests,
            "median_request_seconds": seconds,
            "requests_per_second": 1.0 / max(seconds, 1e-12),
            "adoption_overhead_fraction": fraction,
        }
        for mode, seconds in (("disabled", disabled), ("enabled", enabled))
    ]


def bench_slo_throughput(num_evaluations: int, repeats: int) -> dict:
    """SLO evaluations/second over a registry with realistic instruments."""
    registry = MetricsRegistry()
    for index in range(200):
        tenant = f"tenant-{index % 8}"
        registry.counter(
            "service_requests", tenant=tenant, plan="Identity",
            outcome="ok" if index % 20 else "error",
        ).inc()
        registry.histogram("service_request_latency_seconds", tenant=tenant).observe(
            0.001 * (1 + index % 50)
        )
        registry.record_privacy_spend(tenant, "Identity", 0.01)
    specs = default_slos() + [
        SloSpec(
            name=f"burn-tenant-{t}", kind="privacy_burn",
            tenant=f"tenant-{t}", budget=10.0,
        )
        for t in range(8)
    ]
    engine = SloEngine(registry, specs=specs, publish=False)

    def run():
        for _ in range(num_evaluations):
            engine.evaluate()

    seconds = _time(run, repeats)
    return {
        "section": "slo_throughput",
        "num_specs": len(specs),
        "num_evaluations": num_evaluations,
        "seconds": seconds,
        "evaluations_per_second": num_evaluations / max(seconds, 1e-12),
    }


def record_trajectory(point: dict) -> None:
    """Append this run to the BENCH_telemetry.json trajectory file."""
    if TRAJECTORY_PATH.exists():
        data = json.loads(TRAJECTORY_PATH.read_text())
    else:
        data = {"benchmark": "telemetry", "trajectory": []}
    data["trajectory"].append(point)
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode: fewer sizes/repeats")
    parser.add_argument(
        "--max-disabled-overhead",
        type=float,
        default=None,
        help="fail if dormant instrumentation costs more than this fraction "
        "of per-request latency (default: 0.02 full, 0.15 quick — CI "
        "hardware is noisy)",
    )
    parser.add_argument(
        "--max-adoption-overhead",
        type=float,
        default=None,
        help="fail if process-backend trace propagation + span adoption costs "
        "more than this fraction of request latency (default: 0.05 full, "
        "0.50 quick — a single quick repeat is at the mercy of the OS "
        "scheduler)",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="skip appending to BENCH_telemetry.json"
    )
    args = parser.parse_args()

    if args.quick:
        repeats = 1
        num_requests = 60
        noop_calls = 20_000
        num_spans = 200
        num_remote = 20
        num_evaluations = 100
    else:
        repeats = 3
        num_requests = 300
        noop_calls = 200_000
        num_spans = 1000
        num_remote = 100
        num_evaluations = 1000

    max_overhead = args.max_disabled_overhead if args.max_disabled_overhead is not None else (
        0.15 if args.quick else 0.02
    )
    max_adoption = args.max_adoption_overhead if args.max_adoption_overhead is not None else (
        0.50 if args.quick else 0.05
    )

    results = bench_service_throughput(num_requests, repeats)
    noop = bench_noop_overhead(results, noop_calls, repeats)
    results.append(noop)
    results += bench_exporters(num_spans, repeats)
    distributed = bench_distributed_overhead(num_remote, repeats)
    results += distributed
    results.append(bench_slo_throughput(num_evaluations, repeats))

    print(f"\nTelemetry benchmark ({'quick' if args.quick else 'full'} mode)\n")
    for r in results:
        if r["section"] == "service_throughput":
            print(
                f"  service_throughput tracing={r['tracing']:8s} "
                f"{r['requests_per_second']:10.0f} req/s over {r['num_requests']}"
            )
        elif r["section"] == "noop_overhead":
            print(
                f"  noop_overhead {r['seconds_per_seam'] * 1e9:8.0f} ns/seam x "
                f"{r['spans_per_request']} seams/request = "
                f"{r['overhead_fraction'] * 100:.3f}% of request latency"
            )
        elif r["section"] == "exporter_throughput":
            print(
                f"  exporter_throughput {r['exporter']:12s} "
                f"{r['spans_per_second']:10.0f} spans/s over {r['num_spans']}"
            )
        elif r["section"] == "distributed_overhead":
            print(
                f"  distributed_overhead tracing={r['tracing']:8s} "
                f"{r['requests_per_second']:10.0f} req/s over {r['num_requests']} "
                f"(process backend)"
            )
        elif r["section"] == "slo_throughput":
            print(
                f"  slo_throughput {r['evaluations_per_second']:10.0f} eval/s "
                f"({r['num_specs']} specs)"
            )

    adoption_fraction = distributed[0]["adoption_overhead_fraction"]
    print(
        f"\nGate: disabled-instrumentation overhead "
        f"{noop['overhead_fraction'] * 100:.3f}% (threshold {max_overhead * 100:.1f}%)"
    )
    print(
        f"Gate: process-backend span-adoption overhead "
        f"{adoption_fraction * 100:.3f}% (threshold {max_adoption * 100:.1f}%)"
    )

    if not args.no_record:
        record_trajectory(
            {
                "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "mode": "quick" if args.quick else "full",
                "results": results,
            }
        )
        print(f"Trajectory point appended to {TRAJECTORY_PATH.name}")

    if noop["overhead_fraction"] > max_overhead:
        print("FAIL: dormant telemetry instrumentation is no longer free", file=sys.stderr)
        return 1
    if adoption_fraction > max_adoption:
        print(
            "FAIL: distributed trace adoption costs too much process-backend latency",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
