"""Table 4 — MWEM variants: error-improvement factors and relative runtime.

Paper setting: 1-D data vectors of size n=4096 drawn from ten DPBench
datasets, workload = RandomRange(1000), epsilon = 0.1.  For each variant the
table reports (min, mean, max) multiplicative error improvement over standard
MWEM across the datasets, plus mean runtime normalised to MWEM's.

Paper's rows (for reference, from Table 4):

    (a) worst-approx            / MW                 1.00 / 1.00 / 1.00   runtime 1.0
    (b) worst-approx + H2       / MW                 1.03 / 2.80 / 7.93   runtime 354.9
    (c) worst-approx            / NNLS, known total  0.78 / 1.08 / 1.54   runtime 1.0
    (d) worst-approx + H2       / NNLS, known total  0.89 / 2.64 / 8.13   runtime 9.0

Run ``python benchmarks/bench_table4_mwem_variants.py --full`` for the
paper-scale sweep (slow); the default scales the domain and dataset count down.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis import format_table, improvement_factors, per_query_l2_error
from repro.dataset import DATASETS_1D, load_1d
from repro.plans import MwemPlan, MwemVariantB, MwemVariantC, MwemVariantD
from repro.workload import random_range_workload

try:  # pytest-only import so the module still runs as a plain script
    from .conftest import vector_source
except ImportError:  # pragma: no cover
    from conftest import vector_source

VARIANTS = [
    ("(a) worst-approx / MW", MwemPlan),
    ("(b) worst-approx + H2 / MW", MwemVariantB),
    ("(c) worst-approx / NNLS", MwemVariantC),
    ("(d) worst-approx + H2 / NNLS", MwemVariantD),
]


def run_experiment(
    domain_size: int = 512,
    num_queries: int = 200,
    epsilon: float = 0.1,
    rounds: int = 8,
    datasets: list[str] | None = None,
    scale: int = 100_000,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Run every MWEM variant on every dataset; return per-variant error/runtime."""
    datasets = datasets or list(DATASETS_1D)
    workload = random_range_workload(domain_size, num_queries, seed=seed)
    errors: dict[str, list[float]] = {name: [] for name, _ in VARIANTS}
    runtimes: dict[str, list[float]] = {name: [] for name, _ in VARIANTS}

    for dataset_index, dataset in enumerate(datasets):
        x = load_1d(dataset, n=domain_size, scale=scale)
        for name, factory in VARIANTS:
            plan = factory(workload, rounds=rounds, total_records=float(x.sum()))
            source = vector_source(x, epsilon=epsilon, seed=seed + dataset_index)
            start = time.perf_counter()
            result = plan.run(source, epsilon)
            elapsed = time.perf_counter() - start
            errors[name].append(per_query_l2_error(workload, x, result.x_hat))
            runtimes[name].append(elapsed)

    baseline_errors = errors[VARIANTS[0][0]]
    baseline_runtime = float(np.mean(runtimes[VARIANTS[0][0]]))
    table: dict[str, dict[str, float]] = {}
    for name, _ in VARIANTS:
        factors = improvement_factors(baseline_errors, errors[name])
        table[name] = {
            "min_improvement": float(np.min(factors)),
            "mean_improvement": float(np.mean(factors)),
            "max_improvement": float(np.max(factors)),
            "relative_runtime": float(np.mean(runtimes[name]) / max(baseline_runtime, 1e-12)),
        }
    return table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale parameters (slow)")
    args = parser.parse_args()
    if args.full:
        table = run_experiment(domain_size=4096, num_queries=1000, rounds=10)
    else:
        table = run_experiment()
    rows = [
        [
            name,
            values["min_improvement"],
            values["mean_improvement"],
            values["max_improvement"],
            values["relative_runtime"],
        ]
        for name, values in table.items()
    ]
    print("\nTable 4 — MWEM variants (error improvement over MWEM; runtime relative to MWEM)\n")
    print(format_table(["variant", "min", "mean", "max", "runtime"], rows))


# ----------------------------------------------------------------------------
# pytest-benchmark entry points (scaled down so the suite stays fast).
# ----------------------------------------------------------------------------
def _one_run(factory, domain_size=256, rounds=4, epsilon=0.1, seed=0):
    x = load_1d("PIECEWISE", n=domain_size, scale=50_000)
    workload = random_range_workload(domain_size, 50, seed=seed)
    plan = factory(workload, rounds=rounds, total_records=float(x.sum()))
    source = vector_source(x, epsilon=epsilon, seed=seed)
    return plan.run(source, epsilon)


def test_benchmark_mwem_baseline(benchmark):
    benchmark(_one_run, MwemPlan)


def test_benchmark_mwem_variant_b(benchmark):
    benchmark(_one_run, MwemVariantB)


def test_benchmark_mwem_variant_c(benchmark):
    benchmark(_one_run, MwemVariantC)


def test_benchmark_mwem_variant_d(benchmark):
    benchmark(_one_run, MwemVariantD)


def test_table4_shape_reproduces(capsys):
    """The qualitative Table 4 claim: augmented selection improves mean error."""
    table = run_experiment(
        domain_size=256,
        num_queries=100,
        rounds=6,
        datasets=["PIECEWISE", "BIMODAL", "GAUSSIAN", "SPARSE"],
        seed=1,
    )
    baseline = table["(a) worst-approx / MW"]["mean_improvement"]
    augmented = table["(d) worst-approx + H2 / NNLS"]["mean_improvement"]
    assert baseline == 1.0
    assert augmented > 1.0


if __name__ == "__main__":
    main()
