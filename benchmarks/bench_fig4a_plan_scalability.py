"""Fig. 4a — plan runtime vs domain size under dense / sparse / implicit matrices.

Paper setting: the 1-D and 2-D plans of Fig. 2 are run on square 2-D domains
of size 4^7 ... 4^13 (and 1-D domains for DAWA / Greedy-H), with the
measurement matrices materialised as dense, sparse, or kept implicit.  The
figure shows runtime (log scale) against domain size; the paper's finding is
that the implicit representation is fastest and scales ~1000x further for
hierarchical/grid plans, while plans whose selection must materialise
(DAWA, Greedy-H) benefit less.

Executions exceeding a time limit are skipped (the paper stops at 1000 s; the
default here is much smaller so the harness stays quick).
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis import format_table
from repro.dataset import load_1d, load_2d
from repro.plans import (
    AhpPlan,
    DawaPlan,
    GreedyHPlan,
    H2Plan,
    HbPlan,
    HdmmPlan,
    IdentityPlan,
    MwemVariantC,
    PriveletPlan,
    QuadtreePlan,
    UniformGridPlan,
    UniformPlan,
)
from repro.private import protect
from repro.workload import prefix_workload, random_range_workload

try:
    from .conftest import vector_relation
except ImportError:  # pragma: no cover
    from conftest import vector_relation

REPRESENTATIONS = ("dense", "sparse", "implicit")


def _plan_factories(domain_size: int, shape, representation: str):
    """The Fig. 4a plans parameterised by representation."""
    workload = random_range_workload(domain_size, 100, seed=0)
    factories = {
        "Identity": lambda: IdentityPlan(representation=representation),
        "Uniform": lambda: UniformPlan(),
        "Privelet": lambda: PriveletPlan(representation=representation),
        "H2": lambda: H2Plan(representation=representation),
        "HB": lambda: HbPlan(representation=representation),
        "Greedy-H": lambda: GreedyHPlan(
            workload_intervals=workload.intervals, representation=representation
        ),
        "AHP": lambda: AhpPlan(representation=representation),
        "DAWA": lambda: DawaPlan(
            workload_intervals=workload.intervals, representation=representation
        ),
        "MWEM variant c": lambda: MwemVariantC(workload, rounds=4),
        "HDMM": lambda: HdmmPlan(prefix_workload(domain_size), representation=representation),
    }
    if shape is not None:
        factories["QuadTree"] = lambda: QuadtreePlan(shape, representation=representation)
        factories["UniformGrid"] = lambda: UniformGridPlan(shape, representation=representation)
    return factories


def run_experiment(
    domain_sizes=(4**4, 4**5, 4**6),
    epsilon: float = 0.1,
    time_limit: float = 20.0,
    plans: list[str] | None = None,
    seed: int = 0,
):
    """Return rows (plan, representation, domain size, runtime seconds or None)."""
    rows = []
    for domain_size in domain_sizes:
        side = int(np.sqrt(domain_size))
        shape = (side, side) if side * side == domain_size else None
        x = (
            load_2d("MIXTURE2D", shape, scale=1_000_000)
            if shape is not None
            else load_1d("PIECEWISE", n=domain_size, scale=1_000_000)
        )
        for representation in REPRESENTATIONS:
            factories = _plan_factories(domain_size, shape, representation)
            for plan_name, factory in factories.items():
                if plans and plan_name not in plans:
                    continue
                # Dense materialisation of large domains would exhaust memory;
                # mirror the paper by skipping configurations over a budget.
                if representation == "dense" and domain_size > 4**6:
                    rows.append((plan_name, representation, domain_size, None))
                    continue
                source = protect(vector_relation(x), epsilon, seed=seed).vectorize()
                plan = factory()
                start = time.perf_counter()
                try:
                    plan.run(source, epsilon)
                    elapsed = time.perf_counter() - start
                except (MemoryError, ValueError):
                    elapsed = None
                if elapsed is not None and elapsed > time_limit:
                    elapsed = None
                rows.append((plan_name, representation, domain_size, elapsed))
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="larger domain sweep (slow)")
    args = parser.parse_args()
    sizes = (4**4, 4**5, 4**6, 4**7) if args.full else (4**4, 4**5, 4**6)
    rows = run_experiment(domain_sizes=sizes, time_limit=120.0 if args.full else 20.0)
    print("\nFig. 4a — plan runtime (s) by measurement-matrix representation\n")
    print(
        format_table(
            ["plan", "representation", "domain size", "runtime (s)"],
            [[p, r, n, "timeout/skip" if t is None else t] for p, r, n, t in rows],
        )
    )


# ----------------------------------------------------------------------------
# pytest-benchmark entry points: one representative plan per representation.
# ----------------------------------------------------------------------------
def _run_hb(representation: str, n: int = 1024):
    x = load_1d("PIECEWISE", n=n, scale=500_000)
    source = protect(vector_relation(x), 0.1, seed=0).vectorize()
    return HbPlan(representation=representation).run(source, 0.1)


def test_benchmark_hb_implicit(benchmark):
    benchmark(_run_hb, "implicit")


def test_benchmark_hb_sparse(benchmark):
    benchmark(_run_hb, "sparse")


def test_benchmark_hb_dense(benchmark):
    benchmark(_run_hb, "dense")


def test_fig4a_shape_reproduces():
    """Implicit representation is not slower than dense at moderate domains."""
    rows = run_experiment(domain_sizes=(4**5,), plans=["HB", "Identity"], time_limit=60.0)
    runtime = {(p, r): t for p, r, _, t in rows}
    assert runtime[("HB", "implicit")] is not None
    if runtime[("HB", "dense")] is not None:
        assert runtime[("HB", "implicit")] <= runtime[("HB", "dense")] * 1.5


if __name__ == "__main__":
    main()
