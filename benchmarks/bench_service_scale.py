"""Execution-core scale benchmark: backends, sharding, shared artifact tier.

A zipfian load generator drives a 4-shard :class:`~repro.service.ShardRouter`
through every executor backend and records latency percentiles, throughput
and cache hit rates.  Every request pays a fixed **synthetic I/O stall**
(a pure-delay fault armed at the ``scheduler.worker`` seam) standing in for
the per-request network/disk wait a deployed service sees; the stall is what
the concurrent backends overlap, so backend speedups are meaningful even on
a single-core runner where pure-Python plan compute cannot parallelise.

Sections:

* ``load`` — per backend (``inline``/``thread``/``process``): two timed
  waves over the shard ring — an *uncached* wave (one request per
  (session, variant), all budget-spending) followed by a *zipfian* wave
  (popularity-skewed replays, all answered from the measurement cache) —
  reporting p50/p99 latency, throughput, and cache hit rate.  **Gated**
  (full mode): the thread and process backends must beat the inline
  baseline's throughput by ``--min-speedup`` (default 2x) while returning
  **byte-identical** per-request answers; the process backend additionally
  reports its cross-process :class:`~repro.service.SharedArtifactStore`
  hit rate.  **Gated** (both modes): routing stability — no session is
  ever observed on two shards — and a loose p99 ceiling.
* ``migration`` — round-trip ``migrate_session`` of a loaded session to
  another shard and back: time per hop, with the reconciliation oracle
  re-verified and a zero-ε cached replay checked after each hop (gated).
* ``cache`` — the cached-vs-uncached throughput table the retired
  ``bench_service_throughput.py`` reported, on the sharded service; the
  cached wave is asserted budget-free.

Each run appends one trajectory point to ``BENCH_service_scale.json`` at the
repo root.  CI runs ``--quick`` mode (thread backend only, loose gates).

Usage::

    python benchmarks/bench_service_scale.py            # full: all backends
    python benchmarks/bench_service_scale.py --quick    # CI smoke mode
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

import numpy as np

from repro.durability import FaultInjector
from repro.service import (
    ArtifactCache,
    PlanScheduler,
    ProcessExecutor,
    QueryRequest,
    SharedArtifactStore,
    ShardRouter,
    reconcile,
)

try:
    from .conftest import vector_relation
except ImportError:  # pragma: no cover
    from conftest import vector_relation

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_service_scale.json"

DOMAIN = 64
NUM_SHARDS = 4
#: distinct query variants per session (distinct epsilons → distinct answers).
VARIANTS = 4
#: zipf exponent of the session-popularity skew (s > 1: a few hot sessions).
ZIPF_S = 1.2


# ----------------------------------------------------------------------------
# Load generation.
# ----------------------------------------------------------------------------
def build_router(num_sessions: int, domain: int = DOMAIN) -> ShardRouter:
    """A fresh ring with ``num_sessions`` identically-seeded tenant sessions.

    Session ids and seeds are fixed so every backend run sees the *same*
    sessions — the precondition for the byte-identity gate.
    """
    rng = np.random.default_rng(0)
    router = ShardRouter(num_shards=NUM_SHARDS)
    for index in range(num_sessions):
        router.create_session(
            f"tenant{index}",
            vector_relation(rng.integers(0, 100, size=domain).astype(np.float64)),
            epsilon_total=10_000.0,
            seed=index,
            session_id=f"tenant{index}-s1",
        )
    return router


def _variant_request(session_id: str, variant: int, domain: int) -> QueryRequest:
    # Even variants take the cheapest plan; odd variants run a least-squares
    # plan whose Gram factorisation is a shareable artifact — on the process
    # backend one worker builds it and the others fetch it from the
    # cross-process store, which is what the shared-tier hit rate measures.
    return QueryRequest(
        session_id,
        plan="Identity" if variant % 2 == 0 else "Hierarchical (H2)",
        epsilon=0.01 + variant * 1e-3,
        workload="prefix",
        workload_params={"n": domain},
        reuse=True,
    )


def zipfian_mix(
    session_ids: list[str], num_requests: int, domain: int = DOMAIN
) -> tuple[list[QueryRequest], list[QueryRequest]]:
    """The two timed waves: unique uncached requests, then skewed replays.

    The replay wave only references (session, variant) pairs the first wave
    already answered, so no two in-flight requests ever race to *compute*
    the same cache entry — the precondition for byte-identical batches on a
    concurrent backend (see ``PlanScheduler.execute_batch``).
    """
    uncached = [
        _variant_request(session_id, variant, domain)
        for session_id in session_ids
        for variant in range(VARIANTS)
    ]
    rng = np.random.default_rng(42)
    ranks = np.arange(1, len(session_ids) + 1, dtype=np.float64)
    popularity = ranks**-ZIPF_S / np.sum(ranks**-ZIPF_S)
    sessions = rng.choice(len(session_ids), size=num_requests, p=popularity)
    variants = rng.integers(0, VARIANTS, size=num_requests)
    replays = [
        _variant_request(session_ids[s], int(v), domain)
        for s, v in zip(sessions, variants)
    ]
    return uncached, replays


def _warm_process_pool(executor: ProcessExecutor, domain: int) -> None:
    """Pay the workers' one-time import cost outside the timed region.

    The first job a forkserver worker runs imports the plan/kernel stack;
    that is pool start-up, not per-request work, so it must not land inside
    a timed wave.  A few throwaway jobs (more than there are workers) force
    every worker through its first import.
    """
    from repro.service.executors import PlanJob

    rng = np.random.default_rng(1)
    table = vector_relation(rng.integers(0, 10, size=domain).astype(np.float64))
    for index in range(executor.max_workers * 2):
        executor.run_plan(
            None,
            PlanJob(
                table=table,
                accountant="pure",
                epsilon_total=1.0,
                delta=1e-6,
                seed=index,
                prior_primary=0.0,
                prior_delta=0.0,
                plan="Identity",
                plan_params={},
                epsilon=0.1,
            ),
        )


def _percentiles(responses) -> tuple[float, float]:
    latencies = np.sort([response.elapsed_seconds for response in responses])
    return (
        float(np.percentile(latencies, 50)),
        float(np.percentile(latencies, 99)),
    )


def run_backend(
    backend: str,
    num_sessions: int,
    num_requests: int,
    stall_seconds: float,
    domain: int = DOMAIN,
) -> dict:
    """Drive one backend through both waves; returns metrics + answer digest."""
    router = build_router(num_sessions, domain)
    session_ids = [f"tenant{index}-s1" for index in range(num_sessions)]
    faults = FaultInjector()
    if stall_seconds > 0:
        # Pure delay at the per-request seam: the synthetic I/O wait every
        # request pays and concurrent backends overlap.
        faults.arm("scheduler.worker", delay=stall_seconds, times=10**9)
    shared_store = None
    if backend == "process":
        shared_store = SharedArtifactStore()
        executor: object = ProcessExecutor(
            max_workers=2, driver_threads=8, shared_store=shared_store
        )
        artifact_cache = ArtifactCache(shared=shared_store)
    else:
        executor = backend
        artifact_cache = ArtifactCache()
    scheduler = PlanScheduler(
        router,
        executor=executor,
        max_workers=8,
        artifact_cache=artifact_cache,
        fault_injector=faults,
    )
    uncached, replays = zipfian_mix(session_ids, num_requests, domain)
    try:
        if isinstance(executor, ProcessExecutor):
            _warm_process_pool(executor, domain)
        start = time.perf_counter()
        first = scheduler.execute_batch(uncached)
        uncached_seconds = time.perf_counter() - start
        budget_before = {s.session_id: s.budget_consumed() for s in router.sessions()}
        start = time.perf_counter()
        second = scheduler.execute_batch(replays)
        cached_seconds = time.perf_counter() - start
        store_stats = dict(shared_store.stats) if shared_store is not None else None
    finally:
        scheduler.shutdown()
        if shared_store is not None:
            shared_store.close()

    responses = first + second
    assert all(response.cached for response in second)
    budget_after = {s.session_id: s.budget_consumed() for s in router.sessions()}
    assert budget_after == budget_before, "cached wave must be budget-free"
    for session in router.sessions():
        assert reconcile(session)["exact"]

    shards_seen: dict[str, set] = {}
    for response in responses:
        shards_seen.setdefault(response.session_id, set()).add(response.shard_id)
    cache_stats = scheduler.measurement_cache.stats
    p50, p99 = _percentiles(responses)
    total = len(responses)
    result = {
        "section": "load",
        "backend": backend,
        "num_sessions": num_sessions,
        "num_shards": NUM_SHARDS,
        "stall_seconds": stall_seconds,
        "requests": total,
        "throughput_rps": total / (uncached_seconds + cached_seconds),
        "uncached_rps": len(first) / uncached_seconds,
        "cached_rps": len(second) / cached_seconds,
        "p50_seconds": p50,
        "p99_seconds": p99,
        "cache_hit_rate": cache_stats["hits"] / max(cache_stats["hits"] + cache_stats["misses"], 1),
        "max_shards_per_session": max(len(s) for s in shards_seen.values()),
        "shard_load": router.stats["shards"],
    }
    if store_stats is not None:
        # The store's own counters see every process in the tier — the
        # parent's workload builds and the workers' Gram fetches alike.
        result["shared_artifact_hit_rate"] = store_stats["hits"] / max(
            store_stats["hits"] + store_stats["misses"], 1
        )
        result["shared_artifact_store"] = store_stats
    # The digest the byte-identity gate compares across backends: the
    # *answers* (id, noise seed, released bytes).  Per-request ε deltas are
    # excluded — concurrent same-session requests may acquire the session
    # lock in any order, and the ledger's compensated sums round differently
    # per order, shifting deltas by one ulp; the totals are compared
    # separately below.
    digest = [
        (response.request_id, response.seed,
         np.asarray(response.payload).tobytes())
        for response in responses
    ]
    result["budget_totals"] = {
        session.session_id: session.budget_consumed()
        for session in router.sessions()
    }
    return result, digest


# ----------------------------------------------------------------------------
# Migration round trip.
# ----------------------------------------------------------------------------
def bench_migration(num_sessions: int, num_requests: int) -> dict:
    """Round-trip a loaded session across shards, reconciling at each hop."""
    router = build_router(num_sessions)
    scheduler = PlanScheduler(router, executor="thread", max_workers=8)
    session_id = "tenant0-s1"
    for variant in range(min(num_requests, 8)):
        scheduler.execute(_variant_request(session_id, variant, DOMAIN))
    before = scheduler.execute(_variant_request(session_id, 0, DOMAIN))
    home = router.shard_for(session_id)
    target = next(
        shard.shard_id for shard in router.shards if shard.shard_id != home
    )
    hops, hop_seconds = [(home, target), (target, home)], []
    for _, destination in hops:
        start = time.perf_counter()
        session = scheduler.migrate_session(session_id, destination)
        hop_seconds.append(time.perf_counter() - start)
        assert session.shard_id == destination
        assert reconcile(session)["exact"]
        replay = scheduler.execute(_variant_request(session_id, 0, DOMAIN))
        assert replay.cached and replay.epsilon_spent == 0.0
        assert np.array_equal(replay.payload, before.payload)
    scheduler.shutdown()
    return {
        "section": "migration",
        "hops": len(hops),
        "hop_seconds": hop_seconds,
        "round_trip_exact": True,
    }


def record_trajectory(point: dict) -> None:
    """Append this run to the BENCH_service_scale.json trajectory file."""
    if TRAJECTORY_PATH.exists():
        data = json.loads(TRAJECTORY_PATH.read_text())
    else:
        data = {"benchmark": "service_scale", "trajectory": []}
    data["trajectory"].append(point)
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: inline+thread only, smaller mix, loose gates",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail (full mode) unless thread and process throughput beat the "
        "inline baseline by this factor (default 2.0; quick mode never "
        "gates speedup — one noisy CI core proves nothing)",
    )
    parser.add_argument(
        "--max-p99", type=float, default=1.0,
        help="fail if any backend's p99 request latency exceeds this (seconds)",
    )
    parser.add_argument(
        "--no-record", action="store_true",
        help="skip appending to BENCH_service_scale.json",
    )
    args = parser.parse_args()

    if args.quick:
        backends = ["inline", "thread"]
        num_sessions, num_requests, stall = 8, 48, 0.002
    else:
        backends = ["inline", "thread", "process"]
        num_sessions, num_requests, stall = 16, 160, 0.010
    min_speedup = args.min_speedup if args.min_speedup is not None else 2.0

    results, digests = [], {}
    for backend in backends:
        result, digest = run_backend(backend, num_sessions, num_requests, stall)
        results.append(result)
        digests[backend] = digest
    results.append(bench_migration(num_sessions, num_requests))

    identical = all(digests[b] == digests["inline"] for b in backends)
    baseline = next(r for r in results if r.get("backend") == "inline")
    budgets_close = all(
        math.isclose(spent, baseline["budget_totals"][session_id], rel_tol=1e-9)
        for r in results
        if r["section"] == "load"
        for session_id, spent in r["budget_totals"].items()
    )
    for result in results:
        if result["section"] == "load":
            result["speedup_vs_inline"] = (
                result["throughput_rps"] / baseline["throughput_rps"]
            )
            result["byte_identical_to_inline"] = (
                digests[result["backend"]] == digests["inline"]
            )

    print(f"\nService scale benchmark ({'quick' if args.quick else 'full'} mode)")
    print(
        f"  {num_sessions} sessions on {NUM_SHARDS} shards, "
        f"{num_sessions * VARIANTS} uncached + {num_requests} zipfian replays, "
        f"{stall * 1e3:.0f} ms synthetic I/O stall per request\n"
    )
    for r in results:
        if r["section"] == "load":
            extra = (
                f" shared-artifact-hits={r['shared_artifact_hit_rate'] * 100:.0f}%"
                if "shared_artifact_hit_rate" in r
                else ""
            )
            print(
                f"  load {r['backend']:7s} {r['throughput_rps']:7.1f} req/s "
                f"({r['speedup_vs_inline']:.2f}x inline)  "
                f"p50 {r['p50_seconds'] * 1e3:6.1f} ms  p99 {r['p99_seconds'] * 1e3:6.1f} ms  "
                f"cache-hits={r['cache_hit_rate'] * 100:.0f}%{extra}"
            )
        else:
            hops = ", ".join(f"{s * 1e3:.1f} ms" for s in r["hop_seconds"])
            print(f"  migration round trip: {hops} per hop, ledger exact at each")

    failures = []
    if not identical:
        failures.append("answers are not byte-identical across backends")
    if not budgets_close:
        failures.append("per-session budget totals diverge across backends")
    for result in results:
        if result["section"] != "load":
            continue
        if result["max_shards_per_session"] > 1:
            failures.append(
                f"{result['backend']}: a session was observed on two shards"
            )
        if result["p99_seconds"] > args.max_p99:
            failures.append(
                f"{result['backend']}: p99 {result['p99_seconds']:.3f}s "
                f"exceeds {args.max_p99:.3f}s"
            )
        if (
            not args.quick
            and result["backend"] != "inline"
            and result["speedup_vs_inline"] < min_speedup
        ):
            failures.append(
                f"{result['backend']}: {result['speedup_vs_inline']:.2f}x inline "
                f"is below the {min_speedup:.1f}x gate"
            )

    print(
        f"\nGates: byte-identical={identical}, routing-stable="
        f"{all(r.get('max_shards_per_session', 1) == 1 for r in results)}, "
        f"p99<={args.max_p99:.2f}s"
        + ("" if args.quick else f", speedup>={min_speedup:.1f}x")
    )

    if not args.no_record:
        record_trajectory(
            {
                "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "mode": "quick" if args.quick else "full",
                "results": results,
            }
        )
        print(f"Trajectory point appended to {TRAJECTORY_PATH.name}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ----------------------------------------------------------------------------
# pytest-benchmark entry points (the retired bench_service_throughput.py's,
# rebuilt on the sharded load generator).
# ----------------------------------------------------------------------------
def test_benchmark_uncached_throughput(benchmark):
    router = build_router(4, domain=512)
    scheduler = PlanScheduler(router, executor="thread", max_workers=4)
    session_ids = [session.session_id for session in router.sessions()]
    counter = iter(range(100_000))

    def wave():
        scheduler.execute_batch(
            [
                QueryRequest(
                    session_id,
                    plan="Identity",
                    epsilon=0.01 + next(counter) * 1e-6,
                    workload="prefix",
                    workload_params={"n": 512},
                    reuse=False,
                )
                for session_id in session_ids
                for _ in range(4)
            ]
        )

    benchmark(wave)
    scheduler.shutdown()


def test_benchmark_cached_throughput(benchmark):
    router = build_router(4, domain=512)
    scheduler = PlanScheduler(router, executor="thread", max_workers=4)
    session_ids = [session.session_id for session in router.sessions()]
    warm = [_variant_request(session_id, 0, 512) for session_id in session_ids]
    scheduler.execute_batch(warm)
    benchmark(lambda: scheduler.execute_batch(warm * 4))
    scheduler.shutdown()


def test_cached_path_spends_no_budget():
    """Qualitative claim: replayed requests are budget-free, on any shard."""
    router = build_router(2, domain=256)
    scheduler = PlanScheduler(router, executor="thread", max_workers=2)
    session_ids = [session.session_id for session in router.sessions()]
    warm = [_variant_request(session_id, 0, 256) for session_id in session_ids]
    scheduler.execute_batch(warm)
    consumed = [session.budget_consumed() for session in router.sessions()]
    responses = scheduler.execute_batch(warm * 4)
    assert all(response.cached for response in responses)
    assert [session.budget_consumed() for session in router.sessions()] == consumed
    scheduler.shutdown()


if __name__ == "__main__":
    raise SystemExit(main())
