"""Benchmark of the pluggable privacy-accounting subsystem.

Two sections:

* ``charge_overhead`` — accountant charge throughput at service request
  rates: one kernel-shaped lineage (root → vector), many measurement-sized
  charges through :meth:`BudgetTracker.charge`, reported as charges/second
  per accountant.  The ledger acceptance check is a Neumaier-compensated
  running sum — O(1) per charge, fsum-grade accuracy — so the rate holds
  flat however long the burst grows.  **Gated**: the pure accountant must
  sustain ``--min-charge-rate`` charges/second.
* ``gaussian_vs_laplace`` — expected total squared error of range workloads
  answered through Laplace (pure ε) versus Gaussian (analytic, matched
  ``(ε, δ=1e-6)``) noise on the same strategy.  The L1-vs-L2 sensitivity
  split makes Gaussian win by ``Θ(n / ln(1/δ))`` on prefix-style strategies.
  **Gated**: the error ratio at the largest domain must stay above
  ``--min-error-ratio``.

Each run appends one trajectory point to ``BENCH_accounting.json`` at the
repo root.  CI runs ``--quick`` mode with loose floors so slow runners do
not flake.

Usage::

    python benchmarks/bench_accounting.py            # full sizes
    python benchmarks/bench_accounting.py --quick    # CI smoke mode
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.accounting import (
    ApproxDPAccountant,
    Cost,
    PureDPAccountant,
    ZCDPAccountant,
)
from repro.analysis import expected_workload_error
from repro.matrix import Prefix, RangeQueries
from repro.matrix.ranges import HierarchicalQueries
from repro.private.budget import BudgetTracker

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_accounting.json"

DELTA = 1e-6


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _accountants(num_charges: int):
    """Accountants with budgets sized so every charge in the burst fits."""
    epsilon = 1e-3
    return {
        "pure": (PureDPAccountant(num_charges * epsilon * 2.0), epsilon),
        "approx": (
            ApproxDPAccountant(num_charges * epsilon * 2.0, delta_total=1e-4),
            epsilon,
        ),
        "zcdp": (
            ZCDPAccountant(rho=num_charges * epsilon**2, delta=DELTA),
            epsilon,
        ),
    }


def bench_charge_overhead(num_charges: int, repeats: int) -> list[dict]:
    """Charges/second through a kernel-shaped lineage, per accountant."""
    results = []
    for name, (accountant, epsilon) in _accountants(num_charges).items():
        def burst():
            tracker = BudgetTracker(accountant=accountant)
            tracker.add_derived("vector", "root", 1.0)
            cost = accountant.laplace_cost(epsilon)
            for _ in range(num_charges):
                if not tracker.charge("vector", cost):
                    raise RuntimeError("benchmark budget sized wrong")

        seconds = _time(burst, repeats)
        results.append(
            {
                "section": "charge_overhead",
                "accountant": name,
                "num_charges": num_charges,
                "seconds": seconds,
                "charges_per_second": num_charges / max(seconds, 1e-12),
            }
        )
    return results


def bench_gaussian_vs_laplace(sizes, epsilon: float = 1.0) -> list[dict]:
    """Expected workload error, Laplace vs Gaussian at matched (ε, δ)."""
    results = []
    for n in sizes:
        workload = RangeQueries(
            n, [(i, min(i + n // 16, n - 1)) for i in range(0, n - 1, max(n // 64, 1))]
        )
        for strategy_name, strategy in (
            ("prefix", Prefix(n)),
            ("h2", HierarchicalQueries(n)),
        ):
            laplace = expected_workload_error(workload, strategy, epsilon, noise="laplace")
            gaussian = expected_workload_error(
                workload, strategy, epsilon, noise="gaussian", delta=DELTA
            )
            results.append(
                {
                    "section": "gaussian_vs_laplace",
                    "n": n,
                    "strategy": strategy_name,
                    "epsilon": epsilon,
                    "delta": DELTA,
                    "laplace_error": laplace,
                    "gaussian_error": gaussian,
                    "error_ratio": laplace / max(gaussian, 1e-300),
                }
            )
    return results


def bench_zcdp_composition(rounds_grid) -> list[dict]:
    """Converted ε after k Laplace rounds: basic composition vs zCDP."""
    results = []
    for rounds in rounds_grid:
        per_round = 1.0 / rounds
        basic = rounds * per_round
        accountant = ZCDPAccountant(rho=1.0, delta=DELTA)
        rho = rounds * accountant.laplace_cost(per_round).primary
        eps_zcdp, _ = accountant.epsilon_delta(Cost(rho))
        results.append(
            {
                "section": "zcdp_composition",
                "rounds": rounds,
                "per_round_epsilon": per_round,
                "basic_epsilon": basic,
                "zcdp_epsilon": eps_zcdp,
                "savings_factor": basic / max(eps_zcdp, 1e-300),
            }
        )
    return results


def record_trajectory(point: dict) -> None:
    """Append this run to the BENCH_accounting.json trajectory file."""
    if TRAJECTORY_PATH.exists():
        data = json.loads(TRAJECTORY_PATH.read_text())
    else:
        data = {"benchmark": "accounting", "trajectory": []}
    data["trajectory"].append(point)
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke mode: fewer sizes/repeats")
    parser.add_argument(
        "--min-charge-rate",
        type=float,
        default=None,
        help="fail if the pure accountant sustains fewer charges/second than "
        "this (default: 50000 full, 10000 quick — CI hardware is noisy)",
    )
    parser.add_argument(
        "--min-error-ratio",
        type=float,
        default=None,
        help="fail if the Laplace/Gaussian expected-error ratio on the prefix "
        "strategy at the largest domain falls below this (default: 20 full, "
        "5 quick)",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="skip appending to BENCH_accounting.json"
    )
    args = parser.parse_args()

    if args.quick:
        repeats = 1
        num_charges = 2000
        sizes = [256]
        rounds_grid = [10, 50]
    else:
        repeats = 3
        num_charges = 10000
        sizes = [256, 1024, 4096]
        rounds_grid = [10, 50, 200]

    min_rate = args.min_charge_rate if args.min_charge_rate is not None else (
        10_000.0 if args.quick else 50_000.0
    )
    min_ratio = args.min_error_ratio if args.min_error_ratio is not None else (
        5.0 if args.quick else 20.0
    )

    results = bench_charge_overhead(num_charges, repeats)
    results += bench_gaussian_vs_laplace(sizes)
    results += bench_zcdp_composition(rounds_grid)

    print(f"\nPrivacy-accounting benchmark ({'quick' if args.quick else 'full'} mode)\n")
    for r in results:
        if r["section"] == "charge_overhead":
            print(
                f"  charge_overhead {r['accountant']:8s} "
                f"{r['charges_per_second']:12.0f} charges/s over {r['num_charges']}"
            )
        elif r["section"] == "gaussian_vs_laplace":
            print(
                f"  gaussian_vs_laplace n={r['n']:5d} {r['strategy']:8s} "
                f"laplace/gaussian error ratio {r['error_ratio']:8.1f}x"
            )
        else:
            print(
                f"  zcdp_composition rounds={r['rounds']:4d} "
                f"basic eps {r['basic_epsilon']:.2f} -> zcdp eps "
                f"{r['zcdp_epsilon']:.3f} ({r['savings_factor']:.1f}x tighter)"
            )

    rate_gate = next(
        r for r in results if r["section"] == "charge_overhead" and r["accountant"] == "pure"
    )
    ratio_gate = max(
        (r for r in results if r["section"] == "gaussian_vs_laplace" and r["strategy"] == "prefix"),
        key=lambda r: r["n"],
    )
    print(
        f"\nGate: pure charge rate {rate_gate['charges_per_second']:.0f}/s "
        f"(threshold {min_rate:.0f}/s)"
    )
    print(
        f"Gate: prefix error ratio at n={ratio_gate['n']}: "
        f"{ratio_gate['error_ratio']:.1f}x (threshold {min_ratio:.1f}x)"
    )

    if not args.no_record:
        record_trajectory(
            {
                "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "mode": "quick" if args.quick else "full",
                "results": results,
            }
        )
        print(f"Trajectory point appended to {TRAJECTORY_PATH.name}")

    if rate_gate["charges_per_second"] < min_rate:
        print("FAIL: accountant charge-overhead regression", file=sys.stderr)
        return 1
    if ratio_gate["error_ratio"] < min_ratio:
        print("FAIL: Gaussian-vs-Laplace expected-error regression", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
